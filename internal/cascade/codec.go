package cascade

import (
	"fmt"

	"fairtcim/internal/graph"
	"fairtcim/internal/persist"
)

// WorldCodecKind and WorldCodecVersion identify a live-edge world-set
// payload inside a persist frame. WorldCodecVersion is what EncodeWorlds
// writes; decode accepts everything down to WorldCodecMinVersion, so
// bumping the version does not strand state files from earlier releases.
const (
	WorldCodecKind       = "wrld"
	WorldCodecVersion    = 2
	WorldCodecMinVersion = 1
)

// EncodeWorlds flattens a world set into the version-2 payload: the world
// count, then per world each node's surviving out-degree as a varint
// followed by its targets as a zigzag delta stream. Out-lists inherit the
// source ordering (CSR order for IC, ascending fill order for LT), so
// deltas are small and mostly positive — the zigzag encoding keeps the
// occasional backward gap cheap instead of fatal. Worlds are graph-shaped
// but self-contained; persistence binds the payload to the source graph
// through the frame's fingerprint.
func EncodeWorlds(worlds []*World) []byte {
	var e persist.Enc
	e.Uvarint(uint64(len(worlds)))
	for _, w := range worlds {
		n := w.N()
		e.Uvarint(uint64(n))
		for v := 0; v < n; v++ {
			e.Uvarint(uint64(w.offsets[v+1] - w.offsets[v]))
		}
		for v := 0; v < n; v++ {
			prev := int64(0)
			for _, t := range w.Out(graph.NodeID(v)) {
				e.Svarint(int64(t) - prev)
				prev = int64(t)
			}
		}
	}
	return e.Bytes()
}

// DecodeWorlds reconstructs a world set over an n-node graph from a
// payload written by the current codec version. For frames that may carry
// an older version, use DecodeWorldsVersion with the version reported by
// persist.DecodeRange.
func DecodeWorlds(payload []byte, n int) ([]*World, error) {
	return DecodeWorldsVersion(WorldCodecVersion, payload, n)
}

// DecodeWorldsVersion reconstructs a world set from a payload of the given
// codec version (WorldCodecMinVersion..WorldCodecVersion), re-validating
// every CSR invariant (offset monotonicity, edge-count consistency, target
// range) so a forged or stale payload cannot produce out-of-range
// traversals or silently wrong estimates.
func DecodeWorldsVersion(version uint32, payload []byte, n int) ([]*World, error) {
	switch version {
	case 1:
		return decodeWorldsV1(payload, n)
	case 2:
		return decodeWorldsV2(payload, n)
	default:
		return nil, fmt.Errorf("%w: world codec version %d, support %d..%d",
			persist.ErrMismatch, version, WorldCodecMinVersion, WorldCodecVersion)
	}
}

// decodeWorldsV2 reads the degree+delta layout. Offsets are rebuilt from
// the degree stream, so monotonicity holds by construction; only the
// target range needs checking.
func decodeWorldsV2(payload []byte, n int) ([]*World, error) {
	d := persist.NewDec(payload)
	r := d.UvarintLen()
	if err := d.Err(); err != nil {
		return nil, err
	}
	worlds := make([]*World, r)
	for i := range worlds {
		wn := int(d.Uvarint())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if wn != n {
			return nil, fmt.Errorf("cascade: decoded world %d over %d nodes, graph has %d", i, wn, n)
		}
		offsets := make([]int32, n+1)
		for v := 0; v < n; v++ {
			deg := d.Uvarint()
			if d.Err() != nil {
				return nil, d.Err()
			}
			// Each surviving edge takes at least one payload byte, so a
			// forged degree larger than the remaining payload fails here
			// instead of driving a huge allocation below.
			if deg > uint64(len(payload)) {
				return nil, fmt.Errorf("%w: world %d node %d degree %d exceeds payload", persist.ErrCorrupt, i, v, deg)
			}
			offsets[v+1] = offsets[v] + int32(deg)
			if offsets[v+1] < offsets[v] {
				return nil, fmt.Errorf("%w: world %d edge count overflow at node %d", persist.ErrCorrupt, i, v)
			}
		}
		targets := make([]graph.NodeID, offsets[n])
		at := 0
		for v := 0; v < n; v++ {
			prev := int64(0)
			for k := offsets[v]; k < offsets[v+1]; k++ {
				t := prev + d.Svarint()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if t < 0 || t >= int64(n) {
					return nil, fmt.Errorf("%w: world %d target %d out of range [0,%d)", persist.ErrCorrupt, i, t, n)
				}
				targets[at] = graph.NodeID(t)
				at++
				prev = t
			}
		}
		worlds[i] = &World{offsets: offsets, targets: targets}
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return worlds, nil
}

// decodeWorldsV1 reads the original verbatim-CSR layout.
func decodeWorldsV1(payload []byte, n int) ([]*World, error) {
	d := persist.NewDec(payload)
	r := d.Len(1)
	if err := d.Err(); err != nil {
		return nil, err
	}
	worlds := make([]*World, r)
	for i := range worlds {
		offsets := d.I32s()
		rawTargets := d.I32s()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(offsets) != n+1 {
			return nil, fmt.Errorf("cascade: decoded world %d has %d offsets for %d nodes", i, len(offsets), n)
		}
		if offsets[0] != 0 || int(offsets[n]) != len(rawTargets) {
			return nil, fmt.Errorf("cascade: decoded world %d offsets cover %d..%d, targets %d", i, offsets[0], offsets[n], len(rawTargets))
		}
		for v := 0; v < n; v++ {
			if offsets[v+1] < offsets[v] {
				return nil, fmt.Errorf("cascade: decoded world %d offsets not monotone at node %d", i, v)
			}
		}
		targets := make([]graph.NodeID, len(rawTargets))
		for j, t := range rawTargets {
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("cascade: decoded world %d target %d out of range [0,%d)", i, t, n)
			}
			targets[j] = graph.NodeID(t)
		}
		worlds[i] = &World{offsets: offsets, targets: targets}
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return worlds, nil
}
