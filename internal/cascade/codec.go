package cascade

import (
	"fmt"

	"fairtcim/internal/persist"
)

// WorldCodecKind and WorldCodecVersion identify a live-edge world-set
// payload inside a persist frame. Bump WorldCodecVersion whenever the
// payload layout below changes; old files are then rejected with
// persist.ErrMismatch and the caller re-samples.
const (
	WorldCodecKind    = "wrld"
	WorldCodecVersion = 1
)

// EncodeWorlds flattens a world set into the version-1 payload: the world
// count, then each world's CSR offsets and surviving-edge targets. Worlds
// are graph-shaped but self-contained, so the payload carries everything
// needed to reconstruct them; persistence binds it to the source graph
// through the frame's fingerprint.
func EncodeWorlds(worlds []*World) []byte {
	var e persist.Enc
	e.U64(uint64(len(worlds)))
	for _, w := range worlds {
		e.I32s(w.offsets)
		e.I32s(w.targets)
	}
	return e.Bytes()
}

// DecodeWorlds reconstructs a world set over an n-node graph from a
// version-1 payload, re-validating every CSR invariant (offset
// monotonicity, edge-count consistency, target range) so a forged or
// stale payload cannot produce out-of-range traversals or silently wrong
// estimates.
func DecodeWorlds(payload []byte, n int) ([]*World, error) {
	d := persist.NewDec(payload)
	r := d.Len(1)
	if err := d.Err(); err != nil {
		return nil, err
	}
	worlds := make([]*World, r)
	for i := range worlds {
		offsets := d.I32s()
		targets := d.I32s()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(offsets) != n+1 {
			return nil, fmt.Errorf("cascade: decoded world %d has %d offsets for %d nodes", i, len(offsets), n)
		}
		if offsets[0] != 0 || int(offsets[n]) != len(targets) {
			return nil, fmt.Errorf("cascade: decoded world %d offsets cover %d..%d, targets %d", i, offsets[0], offsets[n], len(targets))
		}
		for v := 0; v < n; v++ {
			if offsets[v+1] < offsets[v] {
				return nil, fmt.Errorf("cascade: decoded world %d offsets not monotone at node %d", i, v)
			}
		}
		for _, t := range targets {
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("cascade: decoded world %d target %d out of range [0,%d)", i, t, n)
			}
		}
		worlds[i] = &World{offsets: offsets, targets: targets}
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return worlds, nil
}
