package cascade

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// pathGraph builds 0->1->...->n-1 with probability p on every edge.
func pathGraph(n int, p float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), p)
	}
	return b.MustBuild()
}

func TestRunICDeterministicPath(t *testing.T) {
	g := pathGraph(5, 1.0)
	times := RunIC(g, []graph.NodeID{0}, NoDeadline, xrand.New(1))
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if times[i] != want {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestRunICRespectsDeadline(t *testing.T) {
	g := pathGraph(5, 1.0)
	times := RunIC(g, []graph.NodeID{0}, 2, xrand.New(1))
	want := []int32{0, 1, 2, NotActivated, NotActivated}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestRunICZeroProbability(t *testing.T) {
	g := pathGraph(4, 0.0)
	times := RunIC(g, []graph.NodeID{0}, NoDeadline, xrand.New(1))
	if times[1] != NotActivated || times[2] != NotActivated {
		t.Fatalf("times = %v", times)
	}
}

func TestRunICDuplicateSeeds(t *testing.T) {
	g := pathGraph(3, 1.0)
	times := RunIC(g, []graph.NodeID{0, 0, 0}, NoDeadline, xrand.New(1))
	if times[0] != 0 || times[1] != 1 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunICActivationRate(t *testing.T) {
	// Star: center -> 200 leaves with p = 0.3; expected activated leaves 60.
	n := 201
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i), 0.3)
	}
	g := b.MustBuild()
	rng := xrand.New(5)
	total := 0
	const runs = 2000
	for r := 0; r < runs; r++ {
		times := RunIC(g, []graph.NodeID{0}, NoDeadline, rng)
		for i := 1; i < n; i++ {
			if times[i] >= 0 {
				total++
			}
		}
	}
	rate := float64(total) / float64(runs*(n-1))
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("leaf activation rate %v, want ~0.3", rate)
	}
}

func TestRunLTDeterministicChain(t *testing.T) {
	// Weight 1.0 edges: each node's only in-neighbor always meets any
	// threshold, so LT on a path is deterministic.
	g := pathGraph(4, 1.0)
	times := RunLT(g, []graph.NodeID{0}, NoDeadline, xrand.New(3))
	for i, want := range []int32{0, 1, 2, 3} {
		if times[i] != want {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestRunLTDeadline(t *testing.T) {
	g := pathGraph(4, 1.0)
	times := RunLT(g, []graph.NodeID{0}, 1, xrand.New(3))
	want := []int32{0, 1, NotActivated, NotActivated}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestRunLTNormalizesWeights(t *testing.T) {
	// Node 2 has two in-edges of weight 0.9 each (sum 1.8 > 1); after
	// normalization both active parents always activate it.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2, 0.9)
	b.AddEdge(1, 2, 0.9)
	g := b.MustBuild()
	rng := xrand.New(7)
	activated := 0
	const runs = 500
	for r := 0; r < runs; r++ {
		times := RunLT(g, []graph.NodeID{0, 1}, NoDeadline, rng)
		if times[2] >= 0 {
			activated++
		}
	}
	if activated != runs {
		t.Fatalf("node with saturated in-weights activated %d/%d", activated, runs)
	}
}

func TestCountWithinDeadline(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetGroups([]int{0, 0, 1, 1})
	g := b.MustBuild()
	times := []int32{0, 3, 1, NotActivated}
	counts := CountWithinDeadline(g, times, 2)
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	counts = CountWithinDeadline(g, times, NoDeadline)
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSampleICWorldAllOrNothing(t *testing.T) {
	g := pathGraph(5, 1.0)
	w := SampleICWorld(g, xrand.New(1))
	if w.M() != 4 {
		t.Fatalf("p=1 world kept %d/4 edges", w.M())
	}
	g0 := pathGraph(5, 0.0)
	w0 := SampleICWorld(g0, xrand.New(1))
	if w0.M() != 0 {
		t.Fatalf("p=0 world kept %d edges", w0.M())
	}
}

func TestSampleICWorldEdgeRate(t *testing.T) {
	g := pathGraph(2000, 0.4)
	kept := 0
	const reps = 50
	rng := xrand.New(9)
	for r := 0; r < reps; r++ {
		kept += SampleICWorld(g, rng.Split()).M()
	}
	rate := float64(kept) / float64(reps*g.M())
	if math.Abs(rate-0.4) > 0.02 {
		t.Fatalf("edge survival rate %v, want ~0.4", rate)
	}
}

func TestSampleLTWorldAtMostOneInEdge(t *testing.T) {
	check := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 15
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Bernoulli(0.3) {
					b.AddEdge(graph.NodeID(i), graph.NodeID(j), 0.5*rng.Float64())
				}
			}
		}
		g := b.MustBuild()
		w := SampleLTWorld(g, rng)
		inDeg := make([]int, n)
		for v := 0; v < n; v++ {
			for _, to := range w.Out(graph.NodeID(v)) {
				inDeg[to]++
			}
		}
		for _, d := range inDeg {
			if d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWorldsDeterministic(t *testing.T) {
	g := pathGraph(200, 0.5)
	a := SampleWorlds(g, IC, 20, 42, 4)
	b := SampleWorlds(g, IC, 20, 42, 1) // different parallelism, same seed
	for i := range a {
		if a[i].M() != b[i].M() {
			t.Fatalf("world %d differs across parallelism (%d vs %d edges)", i, a[i].M(), b[i].M())
		}
		for v := 0; v < a[i].N(); v++ {
			av, bv := a[i].Out(graph.NodeID(v)), b[i].Out(graph.NodeID(v))
			if len(av) != len(bv) {
				t.Fatalf("world %d node %d degree differs", i, v)
			}
			for j := range av {
				if av[j] != bv[j] {
					t.Fatalf("world %d node %d edge %d differs", i, v, j)
				}
			}
		}
	}
}

func TestSampleWorldsSeedsDiffer(t *testing.T) {
	g := pathGraph(500, 0.5)
	a := SampleWorlds(g, IC, 1, 1, 1)[0]
	b := SampleWorlds(g, IC, 1, 2, 1)[0]
	if a.M() == b.M() {
		// Sizes can coincide; check actual content.
		same := true
		for v := 0; v < a.N() && same; v++ {
			av, bv := a.Out(graph.NodeID(v)), b.Out(graph.NodeID(v))
			if len(av) != len(bv) {
				same = false
			}
		}
		if same {
			t.Log("worlds with different seeds have identical degree sequences; acceptable but suspicious")
		}
	}
}

func TestReachableMatchesBFS(t *testing.T) {
	g := pathGraph(6, 1.0)
	w := SampleICWorld(g, xrand.New(1))
	dist := Reachable(w, []graph.NodeID{0}, 3, nil)
	want := []int32{0, 1, 2, 3, NotActivated, NotActivated}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestReachableScratchReuse(t *testing.T) {
	g := pathGraph(4, 1.0)
	w := SampleICWorld(g, xrand.New(1))
	scratch := make([]int32, 4)
	out := Reachable(w, []graph.NodeID{0}, NoDeadline, scratch)
	if &out[0] != &scratch[0] {
		t.Fatal("scratch was not reused")
	}
	// Stale values must be cleared.
	out2 := Reachable(w, []graph.NodeID{3}, NoDeadline, scratch)
	if out2[0] != NotActivated {
		t.Fatalf("stale scratch: %v", out2)
	}
}

// TestWorldBFSMatchesDirectIC checks the live-edge equivalence: the
// distribution of per-node activation within τ is the same whether we run
// IC directly or BFS in sampled worlds.
func TestWorldBFSMatchesDirectIC(t *testing.T) {
	rng := xrand.New(99)
	n := 40
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Bernoulli(0.1) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(j), 0.3)
			}
		}
	}
	g := b.MustBuild()
	seeds := []graph.NodeID{0, 1}
	const tau = 3
	const reps = 6000

	direct := 0.0
	r1 := xrand.New(7)
	for r := 0; r < reps; r++ {
		times := RunIC(g, seeds, tau, r1)
		for _, tv := range times {
			if tv >= 0 && tv <= tau {
				direct++
			}
		}
	}
	direct /= reps

	viaWorlds := 0.0
	worlds := SampleWorlds(g, IC, reps, 8, 0)
	scratch := make([]int32, n)
	for _, w := range worlds {
		dist := Reachable(w, seeds, tau, scratch)
		for _, d := range dist {
			if d >= 0 && d <= tau {
				viaWorlds++
			}
		}
	}
	viaWorlds /= reps

	if math.Abs(direct-viaWorlds) > 0.35 {
		t.Fatalf("direct IC gives %v, live-edge worlds give %v", direct, viaWorlds)
	}
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" || Model(9).String() != "unknown" {
		t.Fatal("Model.String broken")
	}
}

func TestSampleWorldsCancel(t *testing.T) {
	g := pathGraph(20, 0.5)
	cancel := make(chan struct{})
	close(cancel)
	if _, err := SampleWorldsCancel(g, IC, 50, 3, 2, cancel); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled world sampling: got %v, want context.Canceled", err)
	}
	if worlds, err := SampleWorldsCancel(g, IC, 5, 3, 2, nil); err != nil || len(worlds) != 5 {
		t.Fatalf("nil cancel: %v (%d worlds)", err, len(worlds))
	}
}
