// Package cascade implements influence-propagation dynamics: the
// Independent Cascade (IC) model used throughout the paper, the Linear
// Threshold (LT) model the paper notes its results extend to (§3.1), and
// the live-edge "world" representation on which fairtcim's influence
// estimator is built.
//
// # Live-edge worlds
//
// Under IC, flipping every edge's Bernoulli coin up front yields a
// deterministic subgraph (a "world"); a node activates at time t iff its
// hop distance from the seed set in that world is t (Kempe, Kleinberg &
// Tardos 2003). The time-critical utility fτ(S;Y) of Eq. 1 is then the
// expected number of Y-nodes within distance τ of S, estimated by
// averaging over R sampled worlds. On a fixed set of worlds the estimate
// is an exact monotone submodular set function of S, which is what makes
// greedy/CELF guarantees apply to the estimated objective.
package cascade

import (
	"math"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// NoDeadline is the τ value meaning "no deadline" (τ = ∞ in the paper).
// Any activation time is within NoDeadline on graphs of sane size.
const NoDeadline int32 = math.MaxInt32 - 1

// NotActivated marks a node that never activates in an outcome, matching
// the paper's tv = −1 convention.
const NotActivated int32 = -1

// RunIC simulates one Independent Cascade outcome from seeds and returns
// the activation time of every node (NotActivated if never activated).
// Propagation stops once times exceed tau; pass NoDeadline for an
// unbounded run. The rng drives the per-edge Bernoulli trials.
func RunIC(g *graph.Graph, seeds []graph.NodeID, tau int32, rng *xrand.RNG) []int32 {
	times := make([]int32, g.N())
	for i := range times {
		times[i] = NotActivated
	}
	frontier := make([]graph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if times[s] == NotActivated {
			times[s] = 0
			frontier = append(frontier, s)
		}
	}
	var next []graph.NodeID
	for t := int32(1); len(frontier) > 0 && t <= tau; t++ {
		next = next[:0]
		for _, v := range frontier {
			targets, probs := g.OutEdges(v)
			for i, to := range targets {
				if times[to] == NotActivated && rng.Bernoulli(probs[i]) {
					times[to] = t
					next = append(next, to)
				}
			}
		}
		frontier, next = next, frontier
	}
	return times
}

// RunLT simulates one Linear Threshold outcome. Each node draws a uniform
// threshold; it activates in the round where the summed weight of its
// active in-neighbors reaches the threshold. Edge probabilities play the
// role of weights; if a node's incoming weights exceed 1 they are
// normalized, the standard LT validity condition.
func RunLT(g *graph.Graph, seeds []graph.NodeID, tau int32, rng *xrand.RNG) []int32 {
	n := g.N()
	times := make([]int32, n)
	thresholds := make([]float64, n)
	pressure := make([]float64, n) // accumulated active in-neighbor weight
	scale := ltScales(g)
	for i := range times {
		times[i] = NotActivated
		thresholds[i] = rng.Float64()
	}
	frontier := make([]graph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if times[s] == NotActivated {
			times[s] = 0
			frontier = append(frontier, s)
		}
	}
	var next []graph.NodeID
	for t := int32(1); len(frontier) > 0 && t <= tau; t++ {
		next = next[:0]
		for _, v := range frontier {
			targets, probs := g.OutEdges(v)
			for i, w := range targets {
				if times[w] != NotActivated {
					continue
				}
				pressure[w] += probs[i] * scale[w]
				if pressure[w] >= thresholds[w] {
					times[w] = t
					next = append(next, w)
				}
			}
		}
		frontier, next = next, frontier
	}
	return times
}

// ltScales returns the per-node factor that normalizes incoming LT weights
// to sum to at most 1.
func ltScales(g *graph.Graph) []float64 {
	scale := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		sum := 0.0
		_, probs := g.InEdges(graph.NodeID(v))
		for _, p := range probs {
			sum += p
		}
		if sum > 1 {
			scale[v] = 1 / sum
		} else {
			scale[v] = 1
		}
	}
	return scale
}

// CountWithinDeadline counts, per group, the nodes of an outcome activated
// at a time in [0, tau]. It is the inner sum of Eq. 1 for Y = each group.
func CountWithinDeadline(g *graph.Graph, times []int32, tau int32) []int {
	counts := make([]int, g.NumGroups())
	for v, t := range times {
		if t >= 0 && t <= tau {
			counts[g.Group(graph.NodeID(v))]++
		}
	}
	return counts
}
