package cascade

import (
	"sort"

	"fairtcim/internal/graph"
)

// Dynamic-graph invalidation. Unlike RR sets — which stay valid samples
// whenever their reverse-reachable region avoids every changed edge — a
// live-edge world realizes a coin for every edge of the graph, so no world
// survives any delta: a weight change re-biases an already-flipped coin, a
// removal may leave a live edge that no longer exists, and an addition
// means a coin was never flipped at all. Forward-MC world sets are
// therefore always dropped wholesale on update. WorldsTouchedByArcs exists
// for the update report, not for retention decisions: it counts how many
// dropped worlds had actually realized one of the changed arcs, which is
// the honest measure of how much sampled state the delta perturbed.

// WorldsTouchedByArcs returns the number of worlds in which at least one
// of the given arcs is live. Arcs absent from the underlying graph (e.g.
// newly added edges) are never live in any world sampled before the
// change.
func WorldsTouchedByArcs(worlds []*World, arcs []graph.Arc) int {
	if len(worlds) == 0 || len(arcs) == 0 {
		return 0
	}
	touched := 0
	for _, w := range worlds {
		for _, a := range arcs {
			if a.From < 0 || int(a.From) >= w.N() {
				continue
			}
			if hasTarget(w.Out(a.From), a.To) {
				touched++
				break
			}
		}
	}
	return touched
}

// hasTarget reports whether v occurs in a world's out-slice. Out-slices
// inherit the source CSR's ascending target order, so binary search works.
func hasTarget(targets []graph.NodeID, v graph.NodeID) bool {
	i := sort.Search(len(targets), func(i int) bool { return targets[i] >= v })
	return i < len(targets) && targets[i] == v
}
