package cascade

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// The paper adopts its deadline-utility notion from Chen, Lu & Zhang
// (AAAI 2012), whose underlying diffusion model — IC-M, Independent
// Cascade with Meeting events — delays each activation attempt: an active
// node meets each neighbor only with probability m per step, and the
// influence coin is flipped at the first meeting. The deadline interacts
// with these delays, which is what makes time-criticality bite even on
// short paths. This file implements delayed diffusion as a substrate:
// delay distributions, weighted live-edge worlds, a bounded Dijkstra, and
// the direct IC-M simulator.

// DelayDist samples the integer delay (in time steps, >= 1) an influence
// takes to traverse an edge once the activation coin succeeds.
type DelayDist interface {
	Sample(rng *xrand.RNG) int32
	Name() string
}

// UnitDelay is the classic IC timing: influence crosses an edge in
// exactly one step.
type UnitDelay struct{}

// Sample returns 1.
func (UnitDelay) Sample(*xrand.RNG) int32 { return 1 }

// Name returns "unit".
func (UnitDelay) Name() string { return "unit" }

// GeometricDelay models IC-M meeting events: a meeting happens each step
// with probability M, so the delay is Geometric(M) with mean 1/M.
type GeometricDelay struct{ M float64 }

// Sample draws a Geometric(M) delay.
func (g GeometricDelay) Sample(rng *xrand.RNG) int32 { return int32(rng.Geometric(g.M)) }

// Name returns "geom<M>".
func (g GeometricDelay) Name() string { return fmt.Sprintf("geom%g", g.M) }

// ExponentialDelay discretizes the continuous-time IC model (transmission
// delays ~ Exp(Rate), as in Gomez-Rodriguez et al.'s network-inference
// line of work): the delay is ⌈X⌉ for X exponential with the given rate,
// so the support is {1, 2, ...} and the mean is ≈ 1/Rate + 1/2.
type ExponentialDelay struct{ Rate float64 }

// Sample draws a discretized exponential delay.
func (e ExponentialDelay) Sample(rng *xrand.RNG) int32 {
	if e.Rate <= 0 {
		panic("cascade: ExponentialDelay needs positive rate")
	}
	for {
		u := rng.Float64()
		if u == 0 {
			continue
		}
		x := -math.Log(u) / e.Rate
		d := int32(math.Ceil(x))
		if d < 1 {
			d = 1
		}
		return d
	}
}

// Name returns "exp<Rate>".
func (e ExponentialDelay) Name() string { return fmt.Sprintf("exp%g", e.Rate) }

// UniformDelay draws delays uniformly from {Min, ..., Max}.
type UniformDelay struct{ Min, Max int32 }

// Sample draws a uniform integer delay.
func (u UniformDelay) Sample(rng *xrand.RNG) int32 {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Int31n(u.Max-u.Min+1)
}

// Name returns "unif[Min,Max]".
func (u UniformDelay) Name() string { return fmt.Sprintf("unif[%d,%d]", u.Min, u.Max) }

// WeightedWorld is a live-edge world whose surviving edges carry integer
// traversal delays. A node activates at the weighted shortest distance
// from the seed set.
type WeightedWorld struct {
	offsets []int32
	targets []graph.NodeID
	delays  []int32
}

// N returns the number of nodes.
func (w *WeightedWorld) N() int { return len(w.offsets) - 1 }

// M returns the number of surviving edges.
func (w *WeightedWorld) M() int { return len(w.targets) }

// Out returns the surviving out-neighbors of v and their delays. The
// slices are shared; callers must not modify them.
func (w *WeightedWorld) Out(v graph.NodeID) ([]graph.NodeID, []int32) {
	lo, hi := w.offsets[v], w.offsets[v+1]
	return w.targets[lo:hi], w.delays[lo:hi]
}

// SampleDelayedWorld draws one weighted live-edge world: each edge
// survives with its activation probability and carries a delay from dist.
// Like SampleICWorld, the trials stream over the flat CSR arrays.
func SampleDelayedWorld(g *graph.Graph, dist DelayDist, rng *xrand.RNG) *WeightedWorld {
	n := g.N()
	offsets, targets, _ := g.OutCSR()
	thresh := g.OutThresholds()
	capHint := WorldCapacity(g)
	w := &WeightedWorld{
		offsets: make([]int32, n+1),
		targets: make([]graph.NodeID, 0, capHint),
		delays:  make([]int32, 0, capHint),
	}
	for v := 0; v < n; v++ {
		w.offsets[v] = int32(len(w.targets))
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if rng.BernoulliT(thresh[i]) {
				w.targets = append(w.targets, targets[i])
				w.delays = append(w.delays, dist.Sample(rng))
			}
		}
	}
	w.offsets[n] = int32(len(w.targets))
	return w
}

// SampleDelayedWorlds draws r weighted worlds in parallel, deterministic
// for fixed (g, dist, r, seed) as in SampleWorlds.
func SampleDelayedWorlds(g *graph.Graph, dist DelayDist, r int, seed int64, parallelism int) []*WeightedWorld {
	worlds, _ := SampleDelayedWorldsCancel(g, dist, r, seed, parallelism, nil)
	return worlds
}

// SampleDelayedWorldsCancel is SampleDelayedWorlds with cooperative
// cancellation, matching SampleWorldsCancel: once cancel is closed,
// workers stop between worlds and the call returns context.Canceled. A
// nil cancel never fires, making this the common implementation for both
// entry points.
func SampleDelayedWorldsCancel(g *graph.Graph, dist DelayDist, r int, seed int64, parallelism int, cancel <-chan struct{}) ([]*WeightedWorld, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > r {
		parallelism = r
	}
	if parallelism < 1 {
		parallelism = 1
	}
	root := xrand.New(seed)
	worlds := make([]*WeightedWorld, r)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	work := make(chan int, r)
	for i := 0; i < r; i++ {
		work <- i
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cancel != nil {
					select {
					case <-cancel:
						canceled.Store(true)
						return
					default:
					}
				}
				worlds[i] = SampleDelayedWorld(g, dist, root.SplitN(int64(i)))
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return nil, context.Canceled
	}
	return worlds, nil
}

// distHeap is a binary min-heap of (node, dist) pairs for the bounded
// Dijkstra below.
type distItem struct {
	node graph.NodeID
	d    int32
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ReachableDelayed computes each node's weighted activation time from
// seeds in w, bounded by tau: nodes farther than tau get NotActivated.
// scratch, if non-nil and of length N, is reused for the result.
func ReachableDelayed(w *WeightedWorld, seeds []graph.NodeID, tau int32, scratch []int32) []int32 {
	n := w.N()
	dist := scratch
	if len(dist) != n {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = NotActivated
	}
	h := make(distHeap, 0, len(seeds))
	for _, s := range seeds {
		if dist[s] != 0 {
			dist[s] = 0
			h = append(h, distItem{node: s, d: 0})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(distItem)
		if it.d != dist[it.node] {
			continue // stale entry
		}
		targets, delays := w.Out(it.node)
		for i, to := range targets {
			nd := it.d + delays[i]
			if nd > tau {
				continue
			}
			if dist[to] == NotActivated || nd < dist[to] {
				dist[to] = nd
				heap.Push(&h, distItem{node: to, d: nd})
			}
		}
	}
	return dist
}

// RunICM simulates the IC-M model directly: when a node activates, it
// schedules a meeting with each currently inactive neighbor after a
// Geometric(m) delay; at the meeting the activation coin (edge
// probability) is flipped once. Returns per-node activation times within
// tau (NotActivated otherwise). This is the reference dynamics the
// live-edge WeightedWorld representation must agree with.
func RunICM(g *graph.Graph, seeds []graph.NodeID, tau int32, m float64, rng *xrand.RNG) []int32 {
	times := make([]int32, g.N())
	for i := range times {
		times[i] = NotActivated
	}
	h := distHeap{}
	activate := func(v graph.NodeID, t int32) {
		times[v] = t
		targets, probs := g.OutEdges(v)
		for i, to := range targets {
			if times[to] != NotActivated {
				continue
			}
			if !rng.Bernoulli(probs[i]) {
				continue // the influence coin fails; this edge never fires
			}
			at := t + int32(rng.Geometric(m))
			if at <= tau {
				heap.Push(&h, distItem{node: to, d: at})
			}
		}
	}
	for _, s := range seeds {
		if times[s] == NotActivated {
			activate(s, 0)
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(&h).(distItem)
		if times[it.node] != NotActivated {
			continue // already activated earlier via another edge
		}
		activate(it.node, it.d)
	}
	return times
}
