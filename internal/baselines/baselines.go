// Package baselines implements the seed-selection heuristics the influence
// maximization literature compares against: top-degree, random, PageRank,
// and a group-proportional degree strategy (the diversity-seeding idea of
// Stoica & Chaintreau 2019 the paper discusses in §7.2). They share the
// signature: given a graph and budget, return a seed set.
//
// In the layering, baselines sits beside internal/fairim: both consume the
// graph substrate and (for Greedy) any estimator.Estimator, and both feed
// the experiment harness and serving layer above. Nothing below depends on
// it.
package baselines

import (
	"fmt"
	"sort"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// TopDegree returns the budget highest out-degree nodes (ties broken by
// node id for determinism).
func TopDegree(g *graph.Graph, budget int) []graph.NodeID {
	return topBy(g, budget, func(v graph.NodeID) float64 { return float64(g.OutDegree(v)) })
}

// Random returns budget uniformly random distinct nodes.
func Random(g *graph.Graph, budget int, seed int64) []graph.NodeID {
	if budget > g.N() {
		budget = g.N()
	}
	rng := xrand.New(seed)
	idx := rng.Sample(g.N(), budget)
	out := make([]graph.NodeID, budget)
	for i, v := range idx {
		out[i] = graph.NodeID(v)
	}
	return out
}

// PageRankConfig tunes the power iteration.
type PageRankConfig struct {
	Damping   float64 // default 0.85
	Tol       float64 // L1 convergence tolerance, default 1e-9
	MaxIters  int     // default 100
	EdgeProbs bool    // weight transitions by activation probabilities
}

// PageRank computes PageRank scores via power iteration. Dangling mass is
// redistributed uniformly, the standard convention.
func PageRank(g *graph.Graph, cfg PageRankConfig) ([]float64, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("baselines: empty graph")
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Damping < 0 || cfg.Damping >= 1 {
		return nil, fmt.Errorf("baselines: damping %v outside [0,1)", cfg.Damping)
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-9
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 100
	}
	n := g.N()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	// Per-node outgoing weight sums (uniform or probability weighted).
	outWeight := make([]float64, n)
	for v := 0; v < n; v++ {
		_, probs := g.OutEdges(graph.NodeID(v))
		if cfg.EdgeProbs {
			for _, p := range probs {
				outWeight[v] += p
			}
		} else {
			outWeight[v] = float64(len(probs))
		}
	}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outWeight[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-cfg.Damping)/float64(n) + cfg.Damping*dangling/float64(n)
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			if outWeight[v] == 0 {
				continue
			}
			share := cfg.Damping * rank[v] / outWeight[v]
			targets, probs := g.OutEdges(graph.NodeID(v))
			for i, to := range targets {
				if cfg.EdgeProbs {
					next[to] += share * probs[i]
				} else {
					next[to] += share
				}
			}
		}
		diff := 0.0
		for v := range rank {
			d := next[v] - rank[v]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		rank, next = next, rank
		if diff < cfg.Tol {
			break
		}
	}
	return rank, nil
}

// TopPageRank returns the budget highest-PageRank nodes.
func TopPageRank(g *graph.Graph, budget int, cfg PageRankConfig) ([]graph.NodeID, error) {
	scores, err := PageRank(g, cfg)
	if err != nil {
		return nil, err
	}
	return topBy(g, budget, func(v graph.NodeID) float64 { return scores[v] }), nil
}

// GroupProportionalDegree allocates the budget across groups proportionally
// to group sizes (largest-remainder rounding, every group gets at least one
// seed when budget >= k), then picks the top-degree nodes within each
// group. This is the diversity-seeding baseline.
func GroupProportionalDegree(g *graph.Graph, budget int) []graph.NodeID {
	k := g.NumGroups()
	if budget > g.N() {
		budget = g.N()
	}
	if budget <= 0 {
		return nil
	}
	alloc := make([]int, k)
	remainders := make([]float64, k)
	used := 0
	for i := 0; i < k; i++ {
		exact := float64(budget) * float64(g.GroupSize(i)) / float64(g.N())
		alloc[i] = int(exact)
		remainders[i] = exact - float64(alloc[i])
		used += alloc[i]
	}
	// Largest remainders get the leftover budget.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return remainders[order[a]] > remainders[order[b]] })
	for i := 0; used < budget; i = (i + 1) % k {
		alloc[order[i]]++
		used++
	}
	// Minimum one per group when affordable.
	if budget >= k {
		for i := 0; i < k; i++ {
			if alloc[i] == 0 {
				alloc[i] = 1
				// Take one back from the largest allocation.
				maxI := 0
				for j := 1; j < k; j++ {
					if alloc[j] > alloc[maxI] {
						maxI = j
					}
				}
				alloc[maxI]--
			}
		}
	}
	var out []graph.NodeID
	for i := 0; i < k; i++ {
		// GroupMembers is a shared view of the graph's group index; copy
		// before sorting by degree.
		members := append([]graph.NodeID(nil), g.GroupMembers(i)...)
		sort.SliceStable(members, func(a, b int) bool {
			da, db := g.OutDegree(members[a]), g.OutDegree(members[b])
			if da != db {
				return da > db
			}
			return members[a] < members[b]
		})
		take := alloc[i]
		if take > len(members) {
			take = len(members)
		}
		out = append(out, members[:take]...)
	}
	return out
}

// topBy returns the budget nodes maximizing score, ties by id.
func topBy(g *graph.Graph, budget int, score func(graph.NodeID) float64) []graph.NodeID {
	if budget > g.N() {
		budget = g.N()
	}
	if budget <= 0 {
		return nil
	}
	nodes := g.Nodes()
	sort.SliceStable(nodes, func(a, b int) bool {
		sa, sb := score(nodes[a]), score(nodes[b])
		if sa != sb {
			return sa > sb
		}
		return nodes[a] < nodes[b]
	})
	return append([]graph.NodeID(nil), nodes[:budget]...)
}
