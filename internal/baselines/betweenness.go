package baselines

import (
	"runtime"
	"sync"

	"fairtcim/internal/graph"
	"fairtcim/internal/xrand"
)

// Betweenness computes (unweighted, directed) betweenness centrality with
// Brandes' algorithm (2001): one BFS plus a dependency back-propagation
// per source, O(V·E) total. The influence-maximization literature the
// paper cites uses high-betweenness nodes as a classical seeding
// heuristic (Kourtellis et al. 2013).
//
// sampleSources > 0 estimates centrality from that many uniformly chosen
// sources (scaled to the full-source value), the standard approximation
// for large graphs; <= 0 uses every node as a source. parallelism <= 0
// means GOMAXPROCS.
func Betweenness(g *graph.Graph, sampleSources int, seed int64, parallelism int) []float64 {
	n := g.N()
	sources := make([]graph.NodeID, 0, n)
	if sampleSources > 0 && sampleSources < n {
		rng := xrand.New(seed)
		for _, idx := range rng.Sample(n, sampleSources) {
			sources = append(sources, graph.NodeID(idx))
		}
	} else {
		sources = g.Nodes()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(sources) {
		parallelism = len(sources)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	scores := make([]float64, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan graph.NodeID, len(sources))
	for _, s := range sources {
		work <- s
	}
	close(work)
	for p := 0; p < parallelism; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, n)
			st := newBrandesState(n)
			for s := range work {
				st.accumulate(g, s, local)
			}
			mu.Lock()
			for v := range scores {
				scores[v] += local[v]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	if len(sources) < n && len(sources) > 0 {
		scale := float64(n) / float64(len(sources))
		for v := range scores {
			scores[v] *= scale
		}
	}
	return scores
}

// brandesState is reusable per-source working memory.
type brandesState struct {
	dist  []int32
	sigma []float64 // shortest-path counts
	delta []float64 // dependency accumulator
	stack []graph.NodeID
	queue []graph.NodeID
	preds [][]graph.NodeID
}

func newBrandesState(n int) *brandesState {
	return &brandesState{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		preds: make([][]graph.NodeID, n),
	}
}

// accumulate adds source s's dependency contributions into out.
func (st *brandesState) accumulate(g *graph.Graph, s graph.NodeID, out []float64) {
	n := g.N()
	for i := 0; i < n; i++ {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.stack = st.stack[:0]
	st.queue = st.queue[:0]

	st.dist[s] = 0
	st.sigma[s] = 1
	st.queue = append(st.queue, s)
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		st.stack = append(st.stack, v)
		for _, w := range g.OutNeighbors(v) {
			if st.dist[w] < 0 {
				st.dist[w] = st.dist[v] + 1
				st.queue = append(st.queue, w)
			}
			if st.dist[w] == st.dist[v]+1 {
				st.sigma[w] += st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
			}
		}
	}
	for i := len(st.stack) - 1; i >= 0; i-- {
		w := st.stack[i]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] / st.sigma[w] * (1 + st.delta[w])
		}
		if w != s {
			out[w] += st.delta[w]
		}
	}
}

// TopBetweenness returns the budget highest-betweenness nodes (exact
// Brandes over all sources).
func TopBetweenness(g *graph.Graph, budget int) []graph.NodeID {
	scores := Betweenness(g, 0, 0, 0)
	return topBy(g, budget, func(v graph.NodeID) float64 { return scores[v] })
}
