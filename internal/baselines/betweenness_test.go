package baselines

import (
	"math"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

func TestBetweennessPath(t *testing.T) {
	// Undirected path 0-1-2-3-4: exact betweenness (directed convention,
	// each ordered pair counted) is 2·k·(n-1-k) for node k.
	n := 5
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddUndirected(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g := b.MustBuild()
	scores := Betweenness(g, 0, 0, 1)
	want := []float64{0, 6, 8, 6, 0}
	for v := range want {
		if math.Abs(scores[v]-want[v]) > 1e-9 {
			t.Fatalf("scores = %v, want %v", scores, want)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star: the hub lies on every leaf-to-leaf shortest path.
	n := 6
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddUndirected(0, graph.NodeID(v), 1)
	}
	g := b.MustBuild()
	scores := Betweenness(g, 0, 0, 0)
	wantHub := float64((n - 1) * (n - 2)) // ordered leaf pairs
	if math.Abs(scores[0]-wantHub) > 1e-9 {
		t.Fatalf("hub score %v, want %v", scores[0], wantHub)
	}
	for v := 1; v < n; v++ {
		if scores[v] != 0 {
			t.Fatalf("leaf %d score %v", v, scores[v])
		}
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// Two equal-length paths between 0 and 3 via 1 and 2: each carries half
	// the dependency.
	b := graph.NewBuilder(4)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(0, 2, 1)
	b.AddUndirected(1, 3, 1)
	b.AddUndirected(2, 3, 1)
	g := b.MustBuild()
	scores := Betweenness(g, 0, 0, 1)
	if math.Abs(scores[1]-scores[2]) > 1e-9 {
		t.Fatalf("equal middles differ: %v vs %v", scores[1], scores[2])
	}
	if math.Abs(scores[1]-1) > 1e-9 { // 0→3 and 3→0, sigma split 1/2 each
		t.Fatalf("middle score %v, want 1", scores[1])
	}
}

func TestBetweennessParallelMatchesSerial(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 120, G: 0.7, PHom: 0.06, PHet: 0.01, PActivate: 0.1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := Betweenness(g, 0, 0, 1)
	b := Betweenness(g, 0, 0, 4)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-6 {
			t.Fatalf("node %d differs across parallelism: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestBetweennessSampledApproximation(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 200, G: 0.7, PHom: 0.05, PHet: 0.01, PActivate: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := Betweenness(g, 0, 0, 0)
	approx := Betweenness(g, 80, 7, 0)
	// The scaled estimate should correlate: top exact node should rank
	// highly in the approximation.
	best := 0
	for v := range exact {
		if exact[v] > exact[best] {
			best = v
		}
	}
	rank := 0
	for v := range approx {
		if approx[v] > approx[best] {
			rank++
		}
	}
	if rank > 20 {
		t.Fatalf("top exact node ranks %d in sampled estimate", rank)
	}
}

func TestTopBetweenness(t *testing.T) {
	// Barbell: two cliques joined by a bridge node; the bridge has maximal
	// betweenness.
	b := graph.NewBuilder(9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddUndirected(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	for i := 5; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			b.AddUndirected(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	b.AddUndirected(3, 4, 1)
	b.AddUndirected(4, 5, 1)
	g := b.MustBuild()
	seeds := TopBetweenness(g, 1)
	if len(seeds) != 1 || seeds[0] != 4 {
		t.Fatalf("TopBetweenness = %v, want [4]", seeds)
	}
}
