package baselines

import (
	"fairtcim/internal/estimator"
	"fairtcim/internal/graph"
)

// Greedy selects budget seeds by plain greedy maximization of total
// estimated influence under any estimation engine — forward Monte Carlo or
// RIS — through the estimator.Estimator seam. It is the engine-agnostic
// counterpart of the classical greedy IM baseline (Kempe et al. 2003):
// unlike fairim's solvers it optimizes raw total utility with no fairness
// objective, which is exactly what makes it a baseline. candidates nil
// means every node; ties break toward the smaller node id.
func Greedy(est estimator.Estimator, budget int, candidates []graph.NodeID) []graph.NodeID {
	g := est.Graph()
	if candidates == nil {
		candidates = g.Nodes()
	}
	if budget > len(candidates) {
		budget = len(candidates)
	}
	if budget <= 0 {
		return nil
	}
	chosen := make(map[graph.NodeID]bool, budget)
	for len(est.Seeds()) < budget {
		best, bestGain := graph.NodeID(-1), -1.0
		for _, v := range candidates {
			if chosen[v] {
				continue
			}
			if gain := est.Gain(v); gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		est.Add(best)
	}
	return append([]graph.NodeID(nil), est.Seeds()...)
}
