package baselines

import (
	"math"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// starPlusPath: node 0 has high degree; 5..9 form a path.
func starPlusPath(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10)
	for v := 1; v <= 4; v++ {
		b.AddUndirected(0, graph.NodeID(v), 0.5)
	}
	for v := 5; v < 9; v++ {
		b.AddUndirected(graph.NodeID(v), graph.NodeID(v+1), 0.5)
	}
	return b.MustBuild()
}

func TestTopDegree(t *testing.T) {
	g := starPlusPath(t)
	seeds := TopDegree(g, 1)
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Fatalf("TopDegree = %v", seeds)
	}
	if got := TopDegree(g, 100); len(got) != g.N() {
		t.Fatalf("budget clamp failed: %d", len(got))
	}
	if TopDegree(g, 0) != nil {
		t.Fatal("zero budget should be empty")
	}
}

func TestTopDegreeDeterministicTieBreak(t *testing.T) {
	// All path nodes 6,7,8 have degree 2; ties break by id.
	g := starPlusPath(t)
	a := TopDegree(g, 5)
	b := TopDegree(g, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopDegree not deterministic")
		}
	}
}

func TestRandomDistinctAndSeeded(t *testing.T) {
	g := starPlusPath(t)
	a := Random(g, 5, 7)
	b := Random(g, 5, 7)
	if len(a) != 5 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[graph.NodeID]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic for fixed seed")
		}
		if seen[a[i]] {
			t.Fatal("Random repeated a node")
		}
		seen[a[i]] = true
	}
	if len(Random(g, 100, 1)) != g.N() {
		t.Fatal("budget clamp failed")
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a symmetric cycle, PageRank is uniform.
	n := 8
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddUndirected(graph.NodeID(v), graph.NodeID((v+1)%n), 0.5)
	}
	g := b.MustBuild()
	scores, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range scores {
		if math.Abs(s-1.0/float64(n)) > 1e-6 {
			t.Fatalf("node %d score %v", v, s)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(3))
	if err != nil {
		t.Fatal(err)
	}
	scores, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v", sum)
	}
}

func TestPageRankHubOutranksLeaf(t *testing.T) {
	g := starPlusPath(t)
	scores, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= scores[1] {
		t.Fatalf("hub %v vs leaf %v", scores[0], scores[1])
	}
}

func TestPageRankDanglingNodes(t *testing.T) {
	// Directed chain: last node is dangling; scores must still sum to 1.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	g := b.MustBuild()
	scores, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sum := scores[0] + scores[1] + scores[2]
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
	if !(scores[2] > scores[1] && scores[1] > scores[0]) {
		t.Fatalf("chain ordering wrong: %v", scores)
	}
}

func TestPageRankValidation(t *testing.T) {
	g := starPlusPath(t)
	if _, err := PageRank(g, PageRankConfig{Damping: 1.0}); err == nil {
		t.Fatal("damping=1 accepted")
	}
	empty := graph.NewBuilder(0).MustBuild()
	if _, err := PageRank(empty, PageRankConfig{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestPageRankEdgeProbsChangeResult(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(0, 2, 0.1)
	b.AddEdge(1, 0, 0.5)
	b.AddEdge(2, 0, 0.5)
	g := b.MustBuild()
	plain, _ := PageRank(g, PageRankConfig{})
	weighted, _ := PageRank(g, PageRankConfig{EdgeProbs: true})
	if math.Abs(plain[1]-plain[2]) > 1e-9 {
		t.Fatalf("unweighted should tie 1 and 2: %v", plain)
	}
	if weighted[1] <= weighted[2] {
		t.Fatalf("weighted should favor node 1: %v", weighted)
	}
}

func TestTopPageRank(t *testing.T) {
	g := starPlusPath(t)
	seeds, err := TopPageRank(g, 2, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != 0 {
		t.Fatalf("TopPageRank = %v", seeds)
	}
}

func TestGroupProportionalDegree(t *testing.T) {
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 100, G: 0.7, PHom: 0.1, PHet: 0.01, PActivate: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := GroupProportionalDegree(g, 10)
	if len(seeds) != 10 {
		t.Fatalf("len = %d", len(seeds))
	}
	counts := make([]int, g.NumGroups())
	for _, s := range seeds {
		counts[g.Group(s)]++
	}
	// 70:30 split over 10 seeds -> 7 and 3.
	if counts[0] != 7 || counts[1] != 3 {
		t.Fatalf("allocation = %v, want [7 3]", counts)
	}
}

func TestGroupProportionalDegreeMinimumOne(t *testing.T) {
	// Tiny minority still gets a seed when budget >= k.
	b := graph.NewBuilder(50)
	labels := make([]int, 50)
	labels[49] = 1
	b.SetGroups(labels)
	for v := 0; v < 48; v++ {
		b.AddUndirected(graph.NodeID(v), graph.NodeID(v+1), 0.1)
	}
	g := b.MustBuild()
	seeds := GroupProportionalDegree(g, 5)
	counts := make([]int, 2)
	for _, s := range seeds {
		counts[g.Group(s)]++
	}
	if counts[1] != 1 {
		t.Fatalf("minority got %d seeds", counts[1])
	}
}

func TestGroupProportionalDegreeEdgeCases(t *testing.T) {
	g := starPlusPath(t)
	if GroupProportionalDegree(g, 0) != nil {
		t.Fatal("zero budget")
	}
	if len(GroupProportionalDegree(g, 1000)) != g.N() {
		t.Fatal("budget clamp")
	}
}
