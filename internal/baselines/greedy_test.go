package baselines

import (
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
)

func TestGreedyAcceptsAnyEstimator(t *testing.T) {
	g := generate.TwoStars()
	const tau = 1

	engines := map[string]func() estimator.Estimator{
		"forward-mc": func() estimator.Estimator {
			worlds := cascade.SampleWorlds(g, cascade.IC, 20, 1, 0)
			e, err := influence.NewEvaluator(g, worlds, tau)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		"ris": func() estimator.Estimator {
			col, err := ris.Sample(g, tau, []int{1000, 1000}, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			return ris.NewEstimator(col)
		},
	}
	for name, mk := range engines {
		seeds := Greedy(mk(), 2, nil)
		if len(seeds) != 2 || seeds[0] != 0 || seeds[1] != 11 {
			t.Errorf("%s: Greedy seeds = %v, want [0 11]", name, seeds)
		}
	}
}

func TestGreedyRespectsCandidatesAndBudget(t *testing.T) {
	g := generate.TwoStars()
	worlds := cascade.SampleWorlds(g, cascade.IC, 10, 1, 0)
	e, err := influence.NewEvaluator(g, worlds, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := Greedy(e, 3, []graph.NodeID{11, 12})
	if len(seeds) != 2 || seeds[0] != 11 {
		t.Fatalf("seeds = %v, want [11 12] order with hub first", seeds)
	}
}
