package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/server"
)

// writeTestGraph creates a small graph file and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 80, G: 0.7, PHom: 0.08, PHet: 0.01, PActivate: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllProblems(t *testing.T) {
	path := writeTestGraph(t)
	for _, problem := range []string{"p1", "p4"} {
		var out, errw bytes.Buffer
		args := []string{"-graph", path, "-problem", problem, "-budget", "3", "-tau", "5", "-samples", "50"}
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", problem, err)
		}
		report := out.String()
		for _, want := range []string{"seeds (3)", "disparity", "group 1", "group 2"} {
			if !strings.Contains(report, want) {
				t.Fatalf("%s report missing %q:\n%s", problem, want, report)
			}
		}
	}
	for _, problem := range []string{"p2", "p6"} {
		var out, errw bytes.Buffer
		args := []string{"-graph", path, "-problem", problem, "-quota", "0.1", "-tau", "5", "-samples", "50"}
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", problem, err)
		}
		if !strings.Contains(out.String(), "disparity") {
			t.Fatalf("%s report malformed:\n%s", problem, out.String())
		}
	}
}

func TestRunExtensions(t *testing.T) {
	path := writeTestGraph(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-graph", path, "-problem", "p1", "-budget", "2", "-samples", "40",
		"-meeting", "0.5"}, &out, &errw); err != nil {
		t.Fatalf("meeting: %v", err)
	}
	out.Reset()
	if err := run([]string{"-graph", path, "-problem", "p4", "-budget", "2", "-samples", "40",
		"-discount", "0.8"}, &out, &errw); err != nil {
		t.Fatalf("discount: %v", err)
	}
	out.Reset()
	if err := run([]string{"-graph", path, "-problem", "p1", "-budget", "2", "-samples", "40",
		"-model", "lt", "-tau", "-1"}, &out, &errw); err != nil {
		t.Fatalf("lt/no-deadline: %v", err)
	}
}

// TestRunRemote drives the -server client mode against an in-process
// serving layer.
func TestRunRemote(t *testing.T) {
	reg := server.NewRegistry()
	if err := reg.RegisterGraph("stars", "synthetic:twostars", generate.TwoStars()); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errw bytes.Buffer
	args := []string{"-server", ts.URL, "-graph", "stars", "-problem", "p4", "-budget", "2", "-tau", "3", "-samples", "30", "-engine", "ris"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("remote run: %v", err)
	}
	report := out.String()
	for _, want := range []string{"seeds (2)", "remote", "disparity", "cache"} {
		if !strings.Contains(report, want) {
			t.Fatalf("remote report missing %q:\n%s", want, report)
		}
	}

	// Warm repeat reports a cache hit.
	out.Reset()
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hit=true") {
		t.Fatalf("repeated remote request should hit the cache:\n%s", out.String())
	}

	// Server-side errors surface as client errors.
	if err := run([]string{"-server", ts.URL, "-graph", "missing"}, &out, &errw); err == nil {
		t.Fatal("unknown remote graph accepted")
	}
	if err := run([]string{"-server", ts.URL, "-graph", "stars", "-meeting", "0.5"}, &out, &errw); err == nil {
		t.Fatal("-meeting accepted in server mode")
	}
}

// TestRunAccuracyAndTrace covers the (ε,δ) flags and live pick printing
// in local mode.
func TestRunAccuracyAndTrace(t *testing.T) {
	path := writeTestGraph(t)
	var out, errw bytes.Buffer
	args := []string{"-graph", path, "-problem", "p4", "-budget", "2", "-tau", "3",
		"-epsilon", "0.25", "-delta", "0.1", "-trace"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("accuracy run: %v", err)
	}
	report := out.String()
	if got := strings.Count(report, "pick seed="); got != 2 {
		t.Fatalf("printed %d live picks, want 2:\n%s", got, report)
	}
	if !strings.Contains(report, "sampling") {
		t.Fatalf("report missing resolved sampling line:\n%s", report)
	}
}

// TestRunRemoteJobTrace drives -server -trace: submit a job, stream the
// SSE trace, print the final report.
func TestRunRemoteJobTrace(t *testing.T) {
	reg := server.NewRegistry()
	if err := reg.RegisterGraph("stars", "synthetic:twostars", generate.TwoStars()); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errw bytes.Buffer
	args := []string{"-server", ts.URL, "-graph", "stars", "-problem", "p1",
		"-budget", "2", "-tau", "3", "-samples", "30", "-trace"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("remote job run: %v", err)
	}
	report := out.String()
	for _, want := range []string{"job ", "streaming trace", "pick 1", "pick 2", "remote", "disparity"} {
		if !strings.Contains(report, want) {
			t.Fatalf("remote job report missing %q:\n%s", want, report)
		}
	}

	// Accuracy-targeted remote job: the report names the derived budget.
	out.Reset()
	args = []string{"-server", ts.URL, "-graph", "stars", "-problem", "p4",
		"-budget", "2", "-tau", "3", "-epsilon", "0.2", "-delta", "0.05", "-trace"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("remote accuracy job: %v", err)
	}
	if !strings.Contains(out.String(), "sampling") {
		t.Fatalf("accuracy job report missing sampling line:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	var out, errw bytes.Buffer
	cases := [][]string{
		{},                         // missing graph
		{"-graph", "/nonexistent"}, // unreadable
		{"-graph", path, "-problem", "p9"},
		{"-graph", path, "-model", "sir"},
		{"-graph", path, "-h", "cube"},
		{"-graph", path, "-meeting", "2"},
		{"-graph", path, "-discount", "1.5"},
		{"-graph", path, "-problem", "p1", "-budget", "0"},
		{"-graph", path, "-problem", "p2", "-quota", "0"},
		{"-graph", path, "-epsilon", "0.2"}, // delta missing
		{"-graph", path, "-epsilon", "0.2", "-delta", "0.1", "-samples", "50"}, // both budget kinds
		{"-graph", path, "-epsilon", "2", "-delta", "0.1"},                     // epsilon out of range
	}
	for i, args := range cases {
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("case %d (%v): invalid args accepted", i, args)
		}
	}
}
