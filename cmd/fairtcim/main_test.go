package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

// writeTestGraph creates a small graph file and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, err := generate.TwoBlock(generate.TwoBlockConfig{
		N: 80, G: 0.7, PHom: 0.08, PHet: 0.01, PActivate: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllProblems(t *testing.T) {
	path := writeTestGraph(t)
	for _, problem := range []string{"p1", "p4"} {
		var out, errw bytes.Buffer
		args := []string{"-graph", path, "-problem", problem, "-budget", "3", "-tau", "5", "-samples", "50"}
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", problem, err)
		}
		report := out.String()
		for _, want := range []string{"seeds (3)", "disparity", "group 1", "group 2"} {
			if !strings.Contains(report, want) {
				t.Fatalf("%s report missing %q:\n%s", problem, want, report)
			}
		}
	}
	for _, problem := range []string{"p2", "p6"} {
		var out, errw bytes.Buffer
		args := []string{"-graph", path, "-problem", problem, "-quota", "0.1", "-tau", "5", "-samples", "50"}
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", problem, err)
		}
		if !strings.Contains(out.String(), "disparity") {
			t.Fatalf("%s report malformed:\n%s", problem, out.String())
		}
	}
}

func TestRunExtensions(t *testing.T) {
	path := writeTestGraph(t)
	var out, errw bytes.Buffer
	if err := run([]string{"-graph", path, "-problem", "p1", "-budget", "2", "-samples", "40",
		"-meeting", "0.5"}, &out, &errw); err != nil {
		t.Fatalf("meeting: %v", err)
	}
	out.Reset()
	if err := run([]string{"-graph", path, "-problem", "p4", "-budget", "2", "-samples", "40",
		"-discount", "0.8"}, &out, &errw); err != nil {
		t.Fatalf("discount: %v", err)
	}
	out.Reset()
	if err := run([]string{"-graph", path, "-problem", "p1", "-budget", "2", "-samples", "40",
		"-model", "lt", "-tau", "-1"}, &out, &errw); err != nil {
		t.Fatalf("lt/no-deadline: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	var out, errw bytes.Buffer
	cases := [][]string{
		{},                         // missing graph
		{"-graph", "/nonexistent"}, // unreadable
		{"-graph", path, "-problem", "p9"},
		{"-graph", path, "-model", "sir"},
		{"-graph", path, "-h", "cube"},
		{"-graph", path, "-meeting", "2"},
		{"-graph", path, "-discount", "1.5"},
		{"-graph", path, "-problem", "p1", "-budget", "0"},
		{"-graph", path, "-problem", "p2", "-quota", "0"},
	}
	for i, args := range cases {
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("case %d (%v): invalid args accepted", i, args)
		}
	}
}
