// Command fairtcim solves one (Fair)TCIM instance on a graph file in the
// fairtcim edge-list format and prints a per-group influence report.
//
//	fairtcim -graph net.txt -problem p4 -budget 30 -tau 20 -h log
//	fairtcim -graph net.txt -problem p6 -quota 0.2 -tau 5
//	fairtcim -graph net.txt -problem p1 -tau 10 -meeting 0.3   # IC-M delays
//	fairtcim -graph net.txt -problem p4 -discount 0.8          # discounted utility
//
// Problems: p1 (TCIM-Budget), p2 (TCIM-Cover), p4 (FairTCIM-Budget),
// p6 (FairTCIM-Cover). Use cmd/gengraph to produce input graphs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fairtcim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fairtcim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "input graph (fairtcim edge-list format; required)")
		problem   = fs.String("problem", "p4", "p1 | p2 | p4 | p6")
		budget    = fs.Int("budget", 30, "seed budget B (p1/p4)")
		quota     = fs.Float64("quota", 0.2, "coverage quota Q (p2/p6)")
		tau       = fs.Int("tau", 20, "deadline; -1 means no deadline")
		samples   = fs.Int("samples", 200, "Monte-Carlo worlds for optimization")
		hName     = fs.String("h", "log", "concave wrapper for p4: id | log | sqrt | pow<alpha>")
		model     = fs.String("model", "ic", "diffusion model: ic | lt")
		engine    = fs.String("engine", "forward-mc", "estimation engine: forward-mc | ris")
		risPool   = fs.Int("rispool", 0, "RR sets per group for -engine ris; 0 derives from -samples")
		meeting   = fs.Float64("meeting", 0, "IC-M meeting probability (0 disables delays)")
		discount  = fs.Float64("discount", 0, "discount factor gamma in (0,1); 0 disables")
		seed      = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := fairim.DefaultConfig(*seed)
	cfg.Samples = *samples
	if *tau < 0 {
		cfg.Tau = cascade.NoDeadline
	} else {
		cfg.Tau = int32(*tau)
	}
	switch strings.ToLower(*model) {
	case "ic":
		cfg.Model = cascade.IC
	case "lt":
		cfg.Model = cascade.LT
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	h, err := concave.ByName(*hName)
	if err != nil {
		return err
	}
	cfg.H = h
	cfg.Engine, err = fairim.EngineByName(*engine)
	if err != nil {
		return err
	}
	cfg.RISPerGroup = *risPool
	if *meeting > 0 {
		if *meeting > 1 {
			return fmt.Errorf("meeting probability %v outside (0,1]", *meeting)
		}
		if *meeting < 1 {
			cfg.Delay = cascade.GeometricDelay{M: *meeting}
		}
	}
	cfg.Discount = *discount

	var res *fairim.Result
	switch strings.ToLower(*problem) {
	case "p1":
		res, err = fairim.SolveTCIMBudget(g, *budget, cfg)
	case "p2":
		res, err = fairim.SolveTCIMCover(g, *quota, cfg)
	case "p4":
		res, err = fairim.SolveFairTCIMBudget(g, *budget, cfg)
	case "p6":
		res, err = fairim.SolveFairTCIMCover(g, *quota, cfg)
	default:
		err = fmt.Errorf("unknown problem %q", *problem)
	}
	if err != nil {
		return err
	}
	printReport(stdout, g, res)
	return nil
}

func printReport(w io.Writer, g *graph.Graph, res *fairim.Result) {
	fmt.Fprintf(w, "problem       %s\n", res.Problem)
	fmt.Fprintf(w, "seeds (%d)    %v\n", len(res.Seeds), res.Seeds)
	fmt.Fprintf(w, "f(S;V)        %.2f   (%.4f of %d nodes)\n", res.Total, res.NormTotal, g.N())
	for i, u := range res.PerGroup {
		fmt.Fprintf(w, "group %-2d      f=%.2f   f/|V%d|=%.4f   (|V%d|=%d)\n",
			i+1, u, i+1, res.NormPerGroup[i], i+1, g.GroupSize(i))
	}
	fmt.Fprintf(w, "disparity     %.4f\n", res.Disparity)
	fmt.Fprintf(w, "evaluations   %d\n", res.Evaluations)
}
