// Command fairtcim solves one (Fair)TCIM instance on a graph file in the
// fairtcim edge-list format and prints a per-group influence report.
//
//	fairtcim -graph net.txt -problem p4 -budget 30 -tau 20 -h log
//	fairtcim -graph net.txt -problem p6 -quota 0.2 -tau 5
//	fairtcim -graph net.txt -problem p1 -tau 10 -meeting 0.3   # IC-M delays
//	fairtcim -graph net.txt -problem p4 -discount 0.8          # discounted utility
//
// Problems: p1 (TCIM-Budget), p2 (TCIM-Cover), p4 (FairTCIM-Budget),
// p6 (FairTCIM-Cover). Use cmd/gengraph to produce input graphs.
//
// Instead of explicit sample budgets (-samples, -rispool), an accuracy
// target can be requested: -epsilon and -delta invoke the (ε,δ) stopping
// rule, which sizes the sample so every group utility the greedy run
// compares is estimated within ε with probability 1−δ.
//
//	fairtcim -graph net.txt -problem p4 -epsilon 0.2 -delta 0.05
//
// With -server, fairtcim becomes a thin client for a running fairtcimd
// daemon: -graph then names a graph registered on the server, the solve
// runs remotely against its warm estimator cache, and the usual report is
// printed from the JSON response. Adding -trace submits the solve as an
// async job (POST /v1/jobs) and streams per-iteration picks live from the
// job's server-sent-event trace before printing the final report.
//
//	fairtcim -server http://localhost:8732 -graph twoblock -problem p4 -engine ris
//	fairtcim -server http://localhost:8732 -graph twoblock -epsilon 0.2 -delta 0.05 -trace
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fairtcim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fairtcim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "input graph (fairtcim edge-list format; required)")
		problem   = fs.String("problem", "p4", "p1 | p2 | p4 | p6")
		budget    = fs.Int("budget", 30, "seed budget B (p1/p4)")
		quota     = fs.Float64("quota", 0.2, "coverage quota Q (p2/p6)")
		tau       = fs.Int("tau", 20, "deadline; -1 means no deadline")
		samples   = fs.Int("samples", 0, "Monte-Carlo worlds for optimization; 0 = default 200")
		hName     = fs.String("h", "log", "concave wrapper for p4: id | log | sqrt | pow<alpha>")
		model     = fs.String("model", "ic", "diffusion model: ic | lt")
		engine    = fs.String("engine", "forward-mc", "estimation engine: forward-mc | ris")
		risPool   = fs.Int("rispool", 0, "RR sets per group for -engine ris; 0 derives from -samples")
		epsilon   = fs.Float64("epsilon", 0, "accuracy target ε in (0,1); with -delta, replaces explicit budgets")
		delta     = fs.Float64("delta", 0, "accuracy failure probability δ in (0,1); used with -epsilon")
		meeting   = fs.Float64("meeting", 0, "IC-M meeting probability (0 disables delays)")
		discount  = fs.Float64("discount", 0, "discount factor gamma in (0,1); 0 disables")
		seed      = fs.Int64("seed", 1, "random seed")
		trace     = fs.Bool("trace", false, "print each greedy pick as it happens (remote: stream the job trace)")
		serverURL = fs.String("server", "", "fairtcimd base URL; solve remotely with -graph naming a server-side graph")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}
	if (*epsilon > 0) != (*delta > 0) {
		return fmt.Errorf("-epsilon and -delta must be set together")
	}
	var accuracy *fairim.Accuracy
	if *epsilon > 0 {
		if *samples > 0 || *risPool > 0 {
			return fmt.Errorf("-epsilon/-delta replace -samples/-rispool; set one or the other")
		}
		accuracy = &fairim.Accuracy{Epsilon: *epsilon, Delta: *delta}
	}

	if *serverURL != "" {
		if *meeting > 0 || *discount > 0 {
			return fmt.Errorf("-meeting and -discount are not supported in -server mode")
		}
		tau32 := int32(*tau)
		if *tau < 0 {
			tau32 = -1
		}
		req := server.SolveRequest{
			Graph:       *graphPath,
			Problem:     strings.ToLower(*problem),
			Budget:      *budget,
			Quota:       *quota,
			Tau:         &tau32,
			Engine:      *engine,
			Model:       strings.ToLower(*model),
			Samples:     *samples,
			RISPerGroup: *risPool,
			H:           *hName,
			Seed:        *seed,
		}
		if accuracy != nil {
			req.Accuracy = &server.AccuracyRequest{Epsilon: accuracy.Epsilon, Delta: accuracy.Delta}
		}
		if *trace {
			return runRemoteJob(*serverURL, req, stdout)
		}
		return runRemote(*serverURL, req, stdout)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := fairim.DefaultConfig(*seed)
	cfg.Samples = 0 // budgets come from the spec's Sampling block
	if *tau < 0 {
		cfg.Tau = cascade.NoDeadline
	} else {
		cfg.Tau = int32(*tau)
	}
	switch strings.ToLower(*model) {
	case "ic":
		cfg.Model = cascade.IC
	case "lt":
		cfg.Model = cascade.LT
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	h, err := concave.ByName(*hName)
	if err != nil {
		return err
	}
	cfg.H = h
	cfg.Engine, err = fairim.EngineByName(*engine)
	if err != nil {
		return err
	}
	if *meeting > 0 {
		if *meeting > 1 {
			return fmt.Errorf("meeting probability %v outside (0,1]", *meeting)
		}
		if *meeting < 1 {
			cfg.Delay = cascade.GeometricDelay{M: *meeting}
		}
	}
	cfg.Discount = *discount
	if *trace {
		cfg.OnIteration = func(st fairim.IterationStat) {
			fmt.Fprintf(stdout, "pick seed=%-6d objective=%-10.4f f(S;V)=%.2f\n", st.Seed, st.Objective, st.Total)
		}
	}

	p, err := fairim.ProblemByName(*problem)
	if err != nil {
		return err
	}
	spec := fairim.ProblemSpec{
		Problem:  p,
		Budget:   *budget,
		Quota:    *quota,
		Sampling: fairim.Sampling{Samples: *samples, RISPerGroup: *risPool, Accuracy: accuracy},
		Config:   cfg,
	}
	res, err := fairim.Solve(g, spec)
	if err != nil {
		return err
	}
	printReport(stdout, g, res)
	return nil
}

// postJSON sends one JSON request and decodes the response into out,
// mapping non-2xx bodies onto errors.
func postJSON(baseURL, path string, req any, wantStatus int, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(baseURL, "/")+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return remoteError(resp.StatusCode, resp.Body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// remoteError decodes the daemon's unified error envelope
// {"error":{"code","message"}} into a readable error. The stable code is
// surfaced alongside the human message so scripts grepping CLI output can
// branch on it (e.g. version_conflict vs capacity).
func remoteError(status int, body io.Reader) error {
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.NewDecoder(body).Decode(&e) == nil && e.Error.Message != "" {
		if e.Error.Code != "" {
			err := fmt.Errorf("server: %s: %s (HTTP %d)", e.Error.Code, e.Error.Message, status)
			// Cluster-mode failures get a hint: peer_unreachable means the
			// daemon (or router) exhausted every replica that could own the
			// request — a fleet problem, not a query problem.
			if e.Error.Code == "peer_unreachable" {
				return fmt.Errorf("%w\n  hint: the serving fleet has no reachable owner for this request; check each replica's /healthz and /v1/stats cluster.peers_up", err)
			}
			return err
		}
		return fmt.Errorf("server: %s (HTTP %d)", e.Error.Message, status)
	}
	return fmt.Errorf("server: HTTP %d", status)
}

// runRemote sends one /v1/select request to a fairtcimd daemon and prints
// the report from the response.
func runRemote(baseURL string, req server.SolveRequest, stdout io.Writer) error {
	var out server.SolveResponse
	if err := postJSON(baseURL, "/v1/select", req, http.StatusOK, &out); err != nil {
		return err
	}
	printRemoteReport(stdout, &out)
	return nil
}

// runRemoteJob submits the solve as an async job, streams the per-pick SSE
// trace while it runs, then fetches and prints the final result.
func runRemoteJob(baseURL string, req server.SolveRequest, stdout io.Writer) error {
	var st server.JobStatus
	if err := postJSON(baseURL, "/v1/jobs", req, http.StatusAccepted, &st); err != nil {
		return err
	}
	base := strings.TrimRight(baseURL, "/")
	fmt.Fprintf(stdout, "job %s %s; streaming trace\n", st.ID, st.Status)

	resp, err := http.Get(base + st.TraceURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp.StatusCode, resp.Body)
	}
	if err := streamTrace(resp.Body, stdout); err != nil {
		return err
	}

	final, err := http.Get(base + st.StatusURL)
	if err != nil {
		return err
	}
	defer final.Body.Close()
	if final.StatusCode != http.StatusOK {
		return remoteError(final.StatusCode, final.Body)
	}
	if err := json.NewDecoder(final.Body).Decode(&st); err != nil {
		return err
	}
	if st.Status != server.JobDone || st.Result == nil {
		return fmt.Errorf("job %s %s: %s", st.ID, st.Status, st.Error)
	}
	printRemoteReport(stdout, st.Result)
	return nil
}

// streamTrace prints "pick" server-sent events until the "done" event.
func streamTrace(body io.Reader, stdout io.Writer) error {
	scanner := bufio.NewScanner(body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "pick":
				var ev server.TraceEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return fmt.Errorf("bad trace event %q: %v", data, err)
				}
				fmt.Fprintf(stdout, "pick %-3d seed=%-6d objective=%-10.4f f(S;V)=%.2f\n",
					ev.Iteration, ev.Seed, ev.Objective, ev.Total)
			case "done":
				var d struct {
					Status string `json:"status"`
					Error  string `json:"error"`
				}
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					return fmt.Errorf("bad done event %q: %v", data, err)
				}
				if d.Status != server.JobDone {
					return fmt.Errorf("job %s: %s", d.Status, d.Error)
				}
				return nil
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	return fmt.Errorf("trace stream ended without a done event")
}

func printRemoteReport(stdout io.Writer, out *server.SolveResponse) {
	fmt.Fprintf(stdout, "problem       %s   (graph %s, engine %s, remote)\n", out.Problem, out.Graph, out.Engine)
	fmt.Fprintf(stdout, "seeds (%d)    %v\n", len(out.Seeds), out.Seeds)
	fmt.Fprintf(stdout, "f(S;V)        %.2f   (%.4f normalized)\n", out.Total, out.NormTotal)
	for i := range out.PerGroup {
		fmt.Fprintf(stdout, "group %-2d      f=%.2f   f/|V%d|=%.4f\n", i+1, out.PerGroup[i], i+1, out.NormPerGroup[i])
	}
	fmt.Fprintf(stdout, "disparity     %.4f\n", out.Disparity)
	fmt.Fprintf(stdout, "evaluations   %d\n", out.Evaluations)
	if out.ResolvedRISPerGroup > 0 {
		fmt.Fprintf(stdout, "sampling      %d RR sets per group\n", out.ResolvedRISPerGroup)
	} else if out.ResolvedSamples > 0 {
		fmt.Fprintf(stdout, "sampling      %d worlds\n", out.ResolvedSamples)
	}
	fmt.Fprintf(stdout, "cache         hit=%v sample_ms=%.1f solve_ms=%.1f\n", out.CacheHit, out.SampleMS, out.SolveMS)
	if out.EffectiveParallelism > 0 {
		fmt.Fprintf(stdout, "parallelism   %d (occupancy-adapted by the server)\n", out.EffectiveParallelism)
	}
}

func printReport(w io.Writer, g *graph.Graph, res *fairim.Result) {
	fmt.Fprintf(w, "problem       %s\n", res.Problem)
	fmt.Fprintf(w, "seeds (%d)    %v\n", len(res.Seeds), res.Seeds)
	fmt.Fprintf(w, "f(S;V)        %.2f   (%.4f of %d nodes)\n", res.Total, res.NormTotal, g.N())
	for i, u := range res.PerGroup {
		fmt.Fprintf(w, "group %-2d      f=%.2f   f/|V%d|=%.4f   (|V%d|=%d)\n",
			i+1, u, i+1, res.NormPerGroup[i], i+1, g.GroupSize(i))
	}
	fmt.Fprintf(w, "disparity     %.4f\n", res.Disparity)
	fmt.Fprintf(w, "evaluations   %d\n", res.Evaluations)
	if res.RISPerGroup > 0 {
		fmt.Fprintf(w, "sampling      %d RR sets per group\n", res.RISPerGroup)
	} else {
		fmt.Fprintf(w, "sampling      %d worlds\n", res.Samples)
	}
}
