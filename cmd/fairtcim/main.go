// Command fairtcim solves one (Fair)TCIM instance on a graph file in the
// fairtcim edge-list format and prints a per-group influence report.
//
//	fairtcim -graph net.txt -problem p4 -budget 30 -tau 20 -h log
//	fairtcim -graph net.txt -problem p6 -quota 0.2 -tau 5
//	fairtcim -graph net.txt -problem p1 -tau 10 -meeting 0.3   # IC-M delays
//	fairtcim -graph net.txt -problem p4 -discount 0.8          # discounted utility
//
// Problems: p1 (TCIM-Budget), p2 (TCIM-Cover), p4 (FairTCIM-Budget),
// p6 (FairTCIM-Cover). Use cmd/gengraph to produce input graphs.
//
// With -server, fairtcim becomes a thin client for a running fairtcimd
// daemon: -graph then names a graph registered on the server, the solve
// runs remotely against its warm estimator cache, and the usual report is
// printed from the JSON response.
//
//	fairtcim -server http://localhost:8732 -graph twoblock -problem p4 -engine ris
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"fairtcim/internal/cascade"
	"fairtcim/internal/concave"
	"fairtcim/internal/fairim"
	"fairtcim/internal/graph"
	"fairtcim/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fairtcim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fairtcim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "input graph (fairtcim edge-list format; required)")
		problem   = fs.String("problem", "p4", "p1 | p2 | p4 | p6")
		budget    = fs.Int("budget", 30, "seed budget B (p1/p4)")
		quota     = fs.Float64("quota", 0.2, "coverage quota Q (p2/p6)")
		tau       = fs.Int("tau", 20, "deadline; -1 means no deadline")
		samples   = fs.Int("samples", 200, "Monte-Carlo worlds for optimization")
		hName     = fs.String("h", "log", "concave wrapper for p4: id | log | sqrt | pow<alpha>")
		model     = fs.String("model", "ic", "diffusion model: ic | lt")
		engine    = fs.String("engine", "forward-mc", "estimation engine: forward-mc | ris")
		risPool   = fs.Int("rispool", 0, "RR sets per group for -engine ris; 0 derives from -samples")
		meeting   = fs.Float64("meeting", 0, "IC-M meeting probability (0 disables delays)")
		discount  = fs.Float64("discount", 0, "discount factor gamma in (0,1); 0 disables")
		seed      = fs.Int64("seed", 1, "random seed")
		serverURL = fs.String("server", "", "fairtcimd base URL; solve remotely with -graph naming a server-side graph")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		fs.Usage()
		return fmt.Errorf("-graph is required")
	}

	if *serverURL != "" {
		if *meeting > 0 || *discount > 0 {
			return fmt.Errorf("-meeting and -discount are not supported in -server mode")
		}
		tau32 := int32(*tau)
		if *tau < 0 {
			tau32 = -1
		}
		return runRemote(*serverURL, server.SelectRequest{
			Graph:       *graphPath,
			Problem:     strings.ToLower(*problem),
			Budget:      *budget,
			Quota:       *quota,
			Tau:         &tau32,
			Engine:      *engine,
			Model:       strings.ToLower(*model),
			Samples:     *samples,
			RISPerGroup: *risPool,
			H:           *hName,
			Seed:        *seed,
		}, stdout)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := fairim.DefaultConfig(*seed)
	cfg.Samples = *samples
	if *tau < 0 {
		cfg.Tau = cascade.NoDeadline
	} else {
		cfg.Tau = int32(*tau)
	}
	switch strings.ToLower(*model) {
	case "ic":
		cfg.Model = cascade.IC
	case "lt":
		cfg.Model = cascade.LT
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	h, err := concave.ByName(*hName)
	if err != nil {
		return err
	}
	cfg.H = h
	cfg.Engine, err = fairim.EngineByName(*engine)
	if err != nil {
		return err
	}
	cfg.RISPerGroup = *risPool
	if *meeting > 0 {
		if *meeting > 1 {
			return fmt.Errorf("meeting probability %v outside (0,1]", *meeting)
		}
		if *meeting < 1 {
			cfg.Delay = cascade.GeometricDelay{M: *meeting}
		}
	}
	cfg.Discount = *discount

	var res *fairim.Result
	switch strings.ToLower(*problem) {
	case "p1":
		res, err = fairim.SolveTCIMBudget(g, *budget, cfg)
	case "p2":
		res, err = fairim.SolveTCIMCover(g, *quota, cfg)
	case "p4":
		res, err = fairim.SolveFairTCIMBudget(g, *budget, cfg)
	case "p6":
		res, err = fairim.SolveFairTCIMCover(g, *quota, cfg)
	default:
		err = fmt.Errorf("unknown problem %q", *problem)
	}
	if err != nil {
		return err
	}
	printReport(stdout, g, res)
	return nil
}

// runRemote sends one /v1/select request to a fairtcimd daemon and prints
// the report from the response.
func runRemote(baseURL string, req server.SelectRequest, stdout io.Writer) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(baseURL, "/")+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	var out server.SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "problem       %s   (graph %s, engine %s, remote)\n", out.Problem, out.Graph, out.Engine)
	fmt.Fprintf(stdout, "seeds (%d)    %v\n", len(out.Seeds), out.Seeds)
	fmt.Fprintf(stdout, "f(S;V)        %.2f   (%.4f normalized)\n", out.Total, out.NormTotal)
	for i := range out.PerGroup {
		fmt.Fprintf(stdout, "group %-2d      f=%.2f   f/|V%d|=%.4f\n", i+1, out.PerGroup[i], i+1, out.NormPerGroup[i])
	}
	fmt.Fprintf(stdout, "disparity     %.4f\n", out.Disparity)
	fmt.Fprintf(stdout, "evaluations   %d\n", out.Evaluations)
	fmt.Fprintf(stdout, "cache         hit=%v sample_ms=%.1f solve_ms=%.1f\n", out.CacheHit, out.SampleMS, out.SolveMS)
	return nil
}

func printReport(w io.Writer, g *graph.Graph, res *fairim.Result) {
	fmt.Fprintf(w, "problem       %s\n", res.Problem)
	fmt.Fprintf(w, "seeds (%d)    %v\n", len(res.Seeds), res.Seeds)
	fmt.Fprintf(w, "f(S;V)        %.2f   (%.4f of %d nodes)\n", res.Total, res.NormTotal, g.N())
	for i, u := range res.PerGroup {
		fmt.Fprintf(w, "group %-2d      f=%.2f   f/|V%d|=%.4f   (|V%d|=%d)\n",
			i+1, u, i+1, res.NormPerGroup[i], i+1, g.GroupSize(i))
	}
	fmt.Fprintf(w, "disparity     %.4f\n", res.Disparity)
	fmt.Fprintf(w, "evaluations   %d\n", res.Evaluations)
}
