// Command fairtcimvet runs fairtcim's invariant analyzers over the
// repository — the contracts the code documents in comments, enforced
// mechanically:
//
//	fairtcimvet ./...          # check everything (CI runs exactly this)
//	fairtcimvet -fix ./...     # also apply suggested fixes (errenvelope)
//	fairtcimvet -list          # print the suite and what each check owns
//	fairtcimvet -only lockorder,statswire ./...
//
// Exit status is 1 when any analyzer reports a finding, 2 on usage or
// load errors. See the README "Static analysis" section for what each
// analyzer enforces and how to keep new code passing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fairtcim/internal/analysis"
)

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fairtcimvet [-fix] [-only names] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				delete(keep, a.Name)
				filtered = append(filtered, a)
			}
		}
		if len(keep) > 0 {
			fmt.Fprintf(os.Stderr, "fairtcimvet: unknown analyzers in -only: %v\n", keep)
			os.Exit(2)
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, fset, err := analysis.Run(".", patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fairtcimvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if *fix {
		fixed, err := analysis.ApplyFixes(fset, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fairtcimvet: applying fixes: %v\n", err)
			os.Exit(2)
		}
		for _, name := range fixed {
			fmt.Fprintf(os.Stderr, "fairtcimvet: rewrote %s\n", name)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
