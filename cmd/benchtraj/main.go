// Command benchtraj records the serving hot-path benchmark trajectory:
// it drives the same micro-benchmarks CI gates on — RR-set sampling,
// world sampling, sketch encode/decode, cold and prefix-extended solves,
// and the warm HTTP serve path — through testing.Benchmark and writes the
// numbers (ns/op, allocs/op, bytes/op, frame sizes, derived ratios) as a
// BENCH_<n>.json checkpoint. It also drives the batched query planner's
// sustained-load mix — 16 concurrent mixed specs answered by one
// SolveBatch versus sixteen per-query solves — verifying the two paths
// agree bit for bit before timing either.
//
//	go run ./cmd/benchtraj -out BENCH_6.json          # refresh the checkpoint
//	go run ./cmd/benchtraj -check BENCH_6.json        # CI: fail on regression
//
// Check mode re-measures and compares against the committed checkpoint:
// deterministic metrics (allocs/op, frame bytes) fail the run when they
// regress more than 10%; ns/op is recorded for the trajectory but never
// gated, since CI hardware varies. Both modes also enforce the absolute
// floors the optimization work claims: pooled RR sampling allocates ≥25%
// less than the per-set baseline, version-2 frames are ≥2× smaller than
// the version-1 layout, and a prefix-extended solve beats a cold solve at
// identical output seeds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/estimator"
	"fairtcim/internal/fairim"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/ris"
	"fairtcim/internal/server"
	"fairtcim/internal/xrand"
)

// The fixed workload every checkpoint measures, chosen to match the
// root bench_test.go micro-benchmarks: the §6.1 two-block SBM with the
// RR-pool and world counts the serving defaults derive.
const (
	benchTau      = 5
	benchPool     = 2000 // RR sets per group
	benchWorlds   = 200
	benchPrefixK  = 25
	benchExtendK  = 50
	workloadLabel = "twoblock n=500 tau=5 ris=2000/group worlds=200 solve k=25->50 planner=16q"
)

// Metric is one benchmark's measurement. AllocsOp and BytesOp are
// deterministic properties of the code path and are gated in check mode;
// NsOp is hardware-bound and only recorded.
type Metric struct {
	NsOp     int64 `json:"ns_op"`
	AllocsOp int64 `json:"allocs_op"`
	BytesOp  int64 `json:"bytes_op"`
}

// Trajectory is the BENCH_<n>.json schema.
type Trajectory struct {
	Workload string             `json:"workload"`
	Metrics  map[string]Metric  `json:"metrics"`
	Sizes    map[string]int64   `json:"sizes"`
	Derived  map[string]float64 `json:"derived"`
}

func main() {
	testing.Init()
	out := flag.String("out", "", "write the measured trajectory to this file")
	check := flag.String("check", "", "compare the measured trajectory against this checkpoint; exit 1 on >10% regression")
	benchtime := flag.String("benchtime", "", "per-benchmark measuring time (testing -benchtime syntax, e.g. 0.2s or 50x)")
	flag.Parse()
	if *out == "" && *check == "" {
		fmt.Fprintln(os.Stderr, "benchtraj: need -out or -check")
		os.Exit(2)
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchtraj:", err)
			os.Exit(2)
		}
	}

	traj, err := measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
	if errs := absoluteGates(traj); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchtraj: FAIL", e)
		}
		os.Exit(1)
	}
	if *check != "" {
		prev, err := readTrajectory(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtraj:", err)
			os.Exit(1)
		}
		if errs := compare(prev, traj); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "benchtraj: REGRESSION", e)
			}
			os.Exit(1)
		}
		fmt.Printf("benchtraj: no regression against %s (%d metrics, %d sizes)\n", *check, len(traj.Metrics), len(traj.Sizes))
	}
	if *out != "" {
		data, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtraj:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchtraj:", err)
			os.Exit(1)
		}
		fmt.Printf("benchtraj: wrote %s\n", *out)
	}
}

func bench(f func(b *testing.B)) Metric {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		f(b)
	})
	return Metric{NsOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), BytesOp: r.AllocedBytesPerOp()}
}

// measure runs the full suite on the fixed workload.
func measure() (*Trajectory, error) {
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		return nil, err
	}
	perGroup := make([]int, g.NumGroups())
	for i := range perGroup {
		perGroup[i] = benchPool
	}
	traj := &Trajectory{
		Workload: workloadLabel,
		Metrics:  map[string]Metric{},
		Sizes:    map[string]int64{},
		Derived:  map[string]float64{},
	}

	// --- sampling ---
	traj.Metrics["ris_sample"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ris.Sample(g, benchTau, perGroup, int64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	traj.Metrics["ris_sample_unpooled_baseline"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baselineRRSample(g, benchTau, perGroup, int64(i))
		}
	})
	traj.Metrics["world_sample"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cascade.SampleWorldsCancel(g, cascade.IC, benchWorlds, int64(i), 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- codec ---
	col, err := ris.Sample(g, benchTau, perGroup, 1, 0)
	if err != nil {
		return nil, err
	}
	risPayload := col.EncodePayload()
	traj.Metrics["ris_encode"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col.EncodePayload()
		}
	})
	traj.Metrics["ris_decode"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ris.DecodePayload(risPayload, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	worlds := cascade.SampleWorlds(g, cascade.IC, benchWorlds, 1, 0)
	worldsPayload := cascade.EncodeWorlds(worlds)
	traj.Metrics["worlds_encode"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cascade.EncodeWorlds(worlds)
		}
	})
	traj.Metrics["worlds_decode"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cascade.DecodeWorlds(worldsPayload, g.N()); err != nil {
				b.Fatal(err)
			}
		}
	})
	traj.Sizes["ris_frame_v2_bytes"] = int64(len(risPayload))
	traj.Sizes["ris_frame_v1_bytes"] = risV1Bytes(col, g)
	traj.Sizes["worlds_frame_v2_bytes"] = int64(len(worldsPayload))
	traj.Sizes["worlds_frame_v1_bytes"] = worldsV1Bytes(worlds, g.N())

	// --- solve: cold vs prefix-extended ---
	spec := func() fairim.ProblemSpec {
		return fairim.ProblemSpec{
			Problem:  fairim.P4,
			Budget:   benchExtendK,
			Sampling: fairim.Sampling{RISPerGroup: benchPool},
			Config: fairim.Config{
				Tau:            benchTau,
				Engine:         fairim.EngineRIS,
				Seed:           1,
				Parallelism:    1,
				ReportOnSample: true,
				Estimator:      ris.NewEstimator(col),
			},
		}
	}
	capSpec := spec()
	capSpec.Budget = benchPrefixK
	capSpec.CaptureWarm = true
	capRes, err := fairim.Solve(g, capSpec)
	if err != nil {
		return nil, err
	}
	if capRes.Warm == nil {
		return nil, fmt.Errorf("k=%d solve captured no warm state", benchPrefixK)
	}
	coldRes, err := fairim.Solve(g, spec())
	if err != nil {
		return nil, err
	}
	warmSpec := spec()
	warmSpec.Warm = capRes.Warm
	warmRes, err := fairim.Solve(g, warmSpec)
	if err != nil {
		return nil, err
	}
	if fmt.Sprint(warmRes.Seeds) != fmt.Sprint(coldRes.Seeds) {
		return nil, fmt.Errorf("prefix-extended seeds %v diverge from cold %v", warmRes.Seeds, coldRes.Seeds)
	}
	traj.Metrics["solve_cold_k50"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fairim.Solve(g, spec()); err != nil {
				b.Fatal(err)
			}
		}
	})
	traj.Metrics["solve_prefix_extend_k25_k50"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := spec()
			s.Warm = capRes.Warm
			if _, err := fairim.Solve(g, s); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- planner: 16-query mixed batch, shared CELF vs per-query ---
	if err := benchPlanner(g, col, traj); err != nil {
		return nil, err
	}

	// --- warm serve: repeat select over the daemon's HTTP path ---
	warmServe, err := benchWarmServe(g)
	if err != nil {
		return nil, err
	}
	traj.Metrics["warm_serve_select"] = warmServe

	traj.Derived["ris_sample_alloc_reduction"] = 1 - float64(traj.Metrics["ris_sample"].AllocsOp)/float64(traj.Metrics["ris_sample_unpooled_baseline"].AllocsOp)
	traj.Derived["ris_frame_compression"] = float64(traj.Sizes["ris_frame_v1_bytes"]) / float64(traj.Sizes["ris_frame_v2_bytes"])
	traj.Derived["worlds_frame_compression"] = float64(traj.Sizes["worlds_frame_v1_bytes"]) / float64(traj.Sizes["worlds_frame_v2_bytes"])
	traj.Derived["prefix_extend_speedup"] = float64(traj.Metrics["solve_cold_k50"].NsOp) / float64(traj.Metrics["solve_prefix_extend_k25_k50"].NsOp)
	traj.Derived["planner_batch_speedup"] = float64(traj.Metrics["planner_per_query_16"].NsOp) / float64(traj.Metrics["planner_batched_16"].NsOp)
	return traj, nil
}

// plannerSpecs is the sustained-load planner mix: 16 concurrent queries
// over one warm sketch, a P1 and a P4 budget sweep with the heavy-tailed
// repetition a fleet of dashboard clients produces — a k-sweep
// {10,20,30,40,50} under a hot k=50 asked again and again. The planner
// coalesces each family onto one shared CELF run peeled at three budget
// boundaries; the per-query baseline pays all 16 greedy loops, so its
// cost grows with Σk while the batched cost grows with max k.
func plannerSpecs() []fairim.ProblemSpec {
	base := fairim.Config{
		Tau:            benchTau,
		Engine:         fairim.EngineRIS,
		Seed:           1,
		Parallelism:    1,
		ReportOnSample: true,
	}
	var specs []fairim.ProblemSpec
	for _, problem := range []fairim.Problem{fairim.P1, fairim.P4} {
		for _, k := range []int{10, 25, 50, 50, 50, 50, 50, 50} {
			specs = append(specs, fairim.ProblemSpec{
				Problem: problem, Budget: k,
				Sampling: fairim.Sampling{RISPerGroup: benchPool}, Config: base,
			})
		}
	}
	return specs
}

// benchPlanner measures the 16-query planner mix both ways — sequential
// per-query solves (the pre-planner serving path: shared sketch, fresh
// estimator and full greedy loop per query) against one SolveBatch —
// after first proving at runtime that the two paths return identical
// answers on this exact workload.
func benchPlanner(g *graph.Graph, col *ris.Collection, traj *Trajectory) error {
	specs := plannerSpecs()
	perQuery := func() ([]*fairim.Result, error) {
		out := make([]*fairim.Result, len(specs))
		for i, s := range specs {
			s.Config.Estimator = ris.NewEstimator(col)
			r, err := fairim.Solve(g, s)
			if err != nil {
				return nil, fmt.Errorf("planner baseline spec %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}
	opts := &fairim.BatchOptions{
		Estimator: func(int, fairim.ProblemSpec) (estimator.Estimator, error) {
			return ris.NewEstimator(col), nil
		},
	}
	batched := func() ([]fairim.BatchOutcome, fairim.BatchReport) {
		return fairim.SolveBatch(g, specs, opts)
	}

	// Parity gate: the benchmark numbers are meaningless unless the
	// batched path answers every query bit-identically.
	base, err := perQuery()
	if err != nil {
		return err
	}
	outs, report := batched()
	if report.Singletons != 0 || report.Coalesced != len(specs) {
		return fmt.Errorf("planner mix did not fully coalesce: %d groups, %d singletons", report.Groups, report.Singletons)
	}
	for i, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("planner batched spec %d: %w", i, o.Err)
		}
		if fmt.Sprint(o.Result.Seeds) != fmt.Sprint(base[i].Seeds) {
			return fmt.Errorf("planner spec %d: batched seeds %v diverge from per-query %v", i, o.Result.Seeds, base[i].Seeds)
		}
		if o.Result.Total != base[i].Total || o.Result.Disparity != base[i].Disparity {
			return fmt.Errorf("planner spec %d: batched utilities diverge from per-query", i)
		}
	}

	traj.Metrics["planner_per_query_16"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perQuery(); err != nil {
				b.Fatal(err)
			}
		}
	})
	traj.Metrics["planner_batched_16"] = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs, _ := batched()
			for _, o := range outs {
				if o.Err != nil {
					b.Fatal(o.Err)
				}
			}
		}
	})
	return nil
}

// benchWarmServe measures a repeat /v1/select on a warmed daemon: sample
// cached, prefix memoized, report from the sample — the steady-state
// serve path.
func benchWarmServe(g *graph.Graph) (Metric, error) {
	reg := server.NewRegistry()
	if err := reg.RegisterGraph("twoblock", "synthetic:twoblock", g); err != nil {
		return Metric{}, err
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		return Metric{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := fmt.Sprintf(`{"graph":"twoblock","problem":"p4","budget":%d,"tau":%d,"engine":"ris","ris_per_group":%d,"eval":"sample"}`,
		benchPrefixK, benchTau, benchPool)
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("select returned %s", resp.Status)
		}
		var sink json.RawMessage
		return json.NewDecoder(resp.Body).Decode(&sink)
	}
	if err := post(); err != nil { // warm the sample cache and prefix memo
		return Metric{}, err
	}
	var benchErr error
	m := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post(); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	return m, benchErr
}

// baselineRRSample mirrors the pre-pooling RR sampler byte for byte where
// it matters for allocation: every RR set allocates its own visited
// array, BFS queue, depth track and result slice. It exists so the
// pooled sampler's allocation win stays measurable after the code it
// replaced is gone (the same pattern bench_test.go uses for the CSR win).
func baselineRRSample(g *graph.Graph, tau int32, perGroup []int, seed int64) [][]graph.NodeID {
	inOffsets, inTargets, _ := g.InCSR()
	thresh := g.InThresholds()
	root := xrand.New(seed)
	var sets [][]graph.NodeID
	flat := int64(0)
	for grp := 0; grp < g.NumGroups(); grp++ {
		pool := g.GroupMembers(grp)
		for i := 0; i < perGroup[grp]; i++ {
			rng := root.SplitN(flat)
			flat++
			rootNode := pool[rng.Intn(len(pool))]
			visited := make([]bool, g.N())
			queue := make([]graph.NodeID, 0, 16)
			depth := make([]int32, 0, 16)
			set := make([]graph.NodeID, 0, 16)
			visited[rootNode] = true
			queue = append(queue, rootNode)
			depth = append(depth, 0)
			set = append(set, rootNode)
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				d := depth[head]
				if d >= tau {
					continue
				}
				for j := inOffsets[v]; j < inOffsets[v+1]; j++ {
					src := inTargets[j]
					if visited[src] {
						continue
					}
					if !rng.BernoulliT(thresh[j]) {
						continue
					}
					visited[src] = true
					queue = append(queue, src)
					depth = append(depth, d+1)
					set = append(set, src)
				}
			}
			sets = append(sets, set)
		}
	}
	return sets
}

// risV1Bytes is the exact size of the version-1 (group,index) pair layout
// for col: τ (4) + length-prefixed pool sizes (8 + 8·G) + node count (8)
// + per node a length prefix (8) and two int32s per reference.
func risV1Bytes(col *ris.Collection, g *graph.Graph) int64 {
	return int64(4 + 8 + 8*g.NumGroups() + 8 + 8*g.N() + 8*col.NumRefs())
}

// worldsV1Bytes is the exact size of the version-1 offsets+targets world
// layout: world count (8) + per world two length-prefixed int32 slices.
func worldsV1Bytes(worlds []*cascade.World, n int) int64 {
	total := int64(8)
	for _, w := range worlds {
		edges := 0
		for v := 0; v < n; v++ {
			edges += len(w.Out(graph.NodeID(v)))
		}
		total += 8 + 4*int64(n+1) + 8 + 4*int64(edges)
	}
	return total
}

func readTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

// absoluteGates are the floors the optimization work claims, enforced on
// every run — writing a checkpoint that violates them is as much a
// failure as regressing against one.
func absoluteGates(t *Trajectory) []string {
	var errs []string
	if r := t.Derived["ris_sample_alloc_reduction"]; r < 0.25 {
		errs = append(errs, fmt.Sprintf("RR sampling allocs only %.1f%% below the unpooled baseline, want >=25%%", 100*r))
	}
	if c := t.Derived["ris_frame_compression"]; c < 2 {
		errs = append(errs, fmt.Sprintf("ris v2 frame only %.2fx smaller than v1, want >=2x", c))
	}
	if c := t.Derived["worlds_frame_compression"]; c < 2 {
		errs = append(errs, fmt.Sprintf("worlds v2 frame only %.2fx smaller than v1, want >=2x", c))
	}
	if s := t.Derived["prefix_extend_speedup"]; s <= 1 {
		errs = append(errs, fmt.Sprintf("prefix-extended solve %.2fx vs cold, want >1x", s))
	}
	if s := t.Derived["planner_batch_speedup"]; s < 5 {
		errs = append(errs, fmt.Sprintf("batched planner only %.2fx the per-query baseline on the 16-query mix, want >=5x", s))
	}
	return errs
}

// compare gates the deterministic metrics against a committed checkpoint:
// allocs/op and frame sizes may grow at most 10% (plus a small absolute
// slack so single-digit counts aren't flaky). ns/op is never compared.
func compare(prev, cur *Trajectory) []string {
	const headroom = 1.10
	const slack = 16 // absolute allocs; keeps tiny counts from gating on noise
	var errs []string
	for name, p := range prev.Metrics {
		c, ok := cur.Metrics[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("metric %q disappeared from the suite", name))
			continue
		}
		if float64(c.AllocsOp) > float64(p.AllocsOp)*headroom+slack {
			errs = append(errs, fmt.Sprintf("%s: %d allocs/op, checkpoint %d", name, c.AllocsOp, p.AllocsOp))
		}
	}
	for name, p := range prev.Sizes {
		c, ok := cur.Sizes[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("size %q disappeared from the suite", name))
			continue
		}
		if float64(c) > float64(p)*headroom {
			errs = append(errs, fmt.Sprintf("%s: %d bytes, checkpoint %d", name, c, p))
		}
	}
	// Derived ratios are dimensionless (same-machine numerator and
	// denominator), so unlike raw ns/op they transfer across hardware
	// and are gated against the checkpoint. Alloc- and size-based ratios
	// are deterministic and get the same 10%; *_speedup ratios divide two
	// separately-timed measurements, whose run-to-run noise compounds, so
	// they gate at half the checkpoint — loose enough not to flake, tight
	// enough that losing the optimization (speedup collapsing toward 1x)
	// still fails. The absoluteGates floors remain the hard guarantee.
	for name, p := range prev.Derived {
		c, ok := cur.Derived[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("derived metric %q disappeared from the suite", name))
			continue
		}
		derate := 0.90
		if strings.HasSuffix(name, "_speedup") {
			derate = 0.50
		}
		if c < p*derate {
			errs = append(errs, fmt.Sprintf("%s: %.3f, checkpoint %.3f (below %.0f%%)", name, c, p, 100*derate))
		}
	}
	return errs
}
