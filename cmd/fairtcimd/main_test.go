package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"fairtcim/internal/server"
)

func TestParseFlags(t *testing.T) {
	var errw bytes.Buffer
	o, err := parseFlags([]string{"-graph", "a=x.txt", "-graph", "b=y.txt", "-cache", "4"}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if o.graphs["a"] != "x.txt" || o.graphs["b"] != "y.txt" || o.cacheSize != 4 {
		t.Fatalf("parsed options: %+v", o)
	}
	if o.stateDir != "" || o.jobRetention != 0 {
		t.Fatalf("persistence defaults: %+v", o)
	}
	o, err = parseFlags([]string{"-state-dir", "/tmp/state", "-job-retention", "17"}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if o.stateDir != "/tmp/state" || o.jobRetention != 17 {
		t.Fatalf("persistence flags: %+v", o)
	}
	if _, err := parseFlags([]string{"-graph", "nopath"}, &errw); err == nil {
		t.Fatal("malformed -graph accepted")
	}
	if _, err := parseFlags([]string{"-graph", "a=x", "-graph", "a=y"}, &errw); err == nil {
		t.Fatal("duplicate -graph name accepted")
	}
}

func TestBuildRegistry(t *testing.T) {
	reg, err := buildRegistry(&options{graphs: map[string]string{"extra": "/tmp/none.txt"}})
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(reg.Names(), ",")
	for _, want := range []string{"twoblock", "twostars", "extra"} {
		if !strings.Contains(names, want) {
			t.Fatalf("registry %q missing %q", names, want)
		}
	}
	reg, err = buildRegistry(&options{noBuiltin: true, graphs: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Names()) != 0 {
		t.Fatalf("-no-builtin registry not empty: %v", reg.Names())
	}
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, runs a select
// against a built-in synthetic graph and shuts down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var errw bytes.Buffer
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &errw, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v (%s)", err, errw.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/select", "application/json",
		strings.NewReader(`{"graph":"twostars","problem":"p1","budget":2,"tau":3,"samples":30}`))
	if err != nil {
		t.Fatal(err)
	}
	var out server.SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Seeds) != 2 {
		t.Fatalf("select: status %d seeds %v", resp.StatusCode, out.Seeds)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Submit an accuracy-targeted async job and poll it to completion.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"graph":"twostars","problem":"p4","budget":2,"tau":3,"accuracy":{"epsilon":0.3,"delta":0.1}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("job submit: status %d %+v", resp.StatusCode, job)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.Status != server.JobDone && job.Status != server.JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 30s", job.Status)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err = http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if job.Status != server.JobDone || job.Result == nil || len(job.Result.Seeds) != 2 {
		t.Fatalf("job did not finish cleanly: %+v", job)
	}
	if job.Result.ResolvedSamples <= 0 {
		t.Fatalf("accuracy job did not report a resolved budget: %+v", job.Result)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(errw.String(), "listening on") {
		t.Fatalf("missing startup log: %s", errw.String())
	}
}

// TestDaemonWarmRestart boots the daemon with a state dir, warms one
// sketch, restarts the daemon on the same dir, and checks the first
// post-restart repeat query is served from persisted state (cache_hit
// with zero builds).
func TestDaemonWarmRestart(t *testing.T) {
	stateDir := t.TempDir()
	body := `{"graph":"twostars","problem":"p1","budget":2,"tau":3,"engine":"ris","samples":40}`

	boot := func() (addr string, cancel context.CancelFunc, done chan error) {
		ctx, cancelFn := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done = make(chan error, 1)
		var errw bytes.Buffer
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-state-dir", stateDir}, &errw, ready)
		}()
		select {
		case addr = <-ready:
		case err := <-done:
			t.Fatalf("daemon exited early: %v (%s)", err, errw.String())
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return addr, cancelFn, done
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
	sel := func(addr string) server.SolveResponse {
		resp, err := http.Post("http://"+addr+"/v1/select", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out server.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select status %d", resp.StatusCode)
		}
		return out
	}

	addr, cancel, done := boot()
	first := sel(addr)
	if first.CacheHit {
		t.Fatal("very first query reported a cache hit")
	}
	stop(cancel, done)

	addr, cancel, done = boot()
	second := sel(addr)
	if !second.CacheHit {
		t.Error("first post-restart query was not served warm")
	}
	if fmt.Sprint(second.Seeds) != fmt.Sprint(first.Seeds) || second.Total != first.Total {
		t.Errorf("post-restart result differs: %v/%v vs %v/%v", second.Seeds, second.Total, first.Seeds, first.Total)
	}
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats server.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Builds != 0 || stats.Cache.DiskHits < 1 {
		t.Errorf("post-restart cache counters: %+v", stats.Cache)
	}
	if stats.StateDir != stateDir {
		t.Errorf("stats state_dir = %q, want %q", stats.StateDir, stateDir)
	}
	stop(cancel, done)
}
