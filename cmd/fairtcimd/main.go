// Command fairtcimd is the persistent (Fair)TCIM serving daemon: it loads
// named graphs once, keeps warm RIS sketches and Monte-Carlo world sets in
// a keyed LRU cache, and answers seed-selection and spread-estimation
// queries over HTTP/JSON (see internal/server for the API).
//
//	fairtcimd -addr :8732 -graph prod=net.txt -graph staging=small.txt
//	fairtcimd -addr :8732 -cache 64 -max-concurrent 8
//	fairtcimd -addr :8732 -state-dir /var/lib/fairtcim
//
// With -state-dir the daemon restarts warm: every built RIS sketch and
// Monte-Carlo world set is written through to <dir>/sketches and reloaded
// on demand after a restart (no re-sampling), and finished-job history is
// journaled to <dir>/jobs.jsonl so GET /v1/jobs survives restarts. Files
// are validated (magic, codec version, checksum, graph fingerprint)
// before use; anything stale or corrupt falls back to a cold build.
//
// Built-in synthetic graphs "twoblock" (the paper's §6.1 two-group SBM)
// and "twostars" (the deterministic parity fixture) are registered unless
// -no-builtin is given, so the daemon is immediately usable:
//
//	curl -s localhost:8732/v1/select -d '{"graph":"twoblock","problem":"p4","budget":10,"engine":"ris"}'
//	curl -s localhost:8732/v1/jobs -d '{"graph":"twoblock","problem":"p4","accuracy":{"epsilon":0.2,"delta":0.05}}'
//	curl -s localhost:8732/v1/graphs
//	curl -s localhost:8732/v1/stats
//
// Batched queries: POST /v1/select/batch answers many specs in one
// request, coalescing compatible ones onto shared sketch passes and
// shared CELF runs with per-query answers bit-identical to /v1/select;
// -coalesce-window extends the same batching to concurrent /v1/select
// traffic transparently.
//
// Graphs are dynamic: POST /v1/graphs/{name}/updates applies an atomic
// batch of edge/group deltas, bumping the graph's version. Cached RIS
// sketches carry over to the new version by resampling only the RR sets
// an update actually touched (tune with -refresh-threshold); persisted
// sketch files are version-keyed, and -state-max-bytes/-state-max-age
// bound the state dir as update churn accumulates files.
//
// Sharded multi-replica serving: with -peers and -self each replica
// joins a consistent-hash ring over (graph, query-spec) keys, proxying
// requests it does not own to the owner with bounded failover, fetching
// warm sketches from peers over GET /v1/sketches/{key} instead of
// rebuilding, and fanning out graph updates so the fleet converges on
// one version. With -route the daemon is instead a stateless routing
// tier in front of such a fleet (no graphs of its own). -probe-interval
// tunes peer health probes; ring membership reacts to probe results.
//
//	fairtcimd -addr :8732 -self http://a:8732 -peers http://b:8732
//	fairtcimd -addr :8730 -route http://a:8732,http://b:8732
//
// Observability: GET /metrics serves Prometheus text metrics (per-route
// request counters and latency histograms plus cache/worker/cluster
// counters), and -request-log writes one JSON line per request to a
// file or stderr (-).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fairtcimd:", err)
		os.Exit(1)
	}
}

// options is the parsed daemon configuration.
type options struct {
	addr            string
	graphs          map[string]string // name -> path
	noBuiltin       bool
	cacheSize       int
	maxConc         int
	queueTimeout    time.Duration
	shutdownTimeout time.Duration
	parallelism     int
	maxJobs         int
	jobRetention    int
	stateDir        string
	stateMaxBytes   int64
	stateMaxAge     time.Duration
	refreshThresh   float64
	coalesceWindow  time.Duration
	peers           []string // other replicas' base URLs (peer-aware mode)
	self            string   // this replica's advertised base URL
	route           []string // router mode: replica URLs to route across
	probeInterval   time.Duration
	requestLog      string // access-log path; "-" = stderr
}

// splitURLs parses a comma-separated URL list, dropping empties.
func splitURLs(v string) []string {
	var out []string
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("fairtcimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{graphs: map[string]string{}}
	fs.StringVar(&o.addr, "addr", ":8732", "listen address")
	fs.Func("graph", "register a graph as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		if _, dup := o.graphs[name]; dup {
			return fmt.Errorf("duplicate graph name %q", name)
		}
		o.graphs[name] = path
		return nil
	})
	fs.BoolVar(&o.noBuiltin, "no-builtin", false, "skip the built-in synthetic graphs")
	fs.IntVar(&o.cacheSize, "cache", 32, "cached estimator samples (LRU entries)")
	fs.IntVar(&o.maxConc, "max-concurrent", 0, "concurrent solves; 0 = GOMAXPROCS")
	fs.DurationVar(&o.queueTimeout, "queue-timeout", 10*time.Second, "max wait for a worker slot before shedding 503")
	fs.DurationVar(&o.shutdownTimeout, "shutdown-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	fs.IntVar(&o.parallelism, "parallelism", 0, "per-solve worker count; 0 = GOMAXPROCS")
	fs.IntVar(&o.maxJobs, "max-jobs", 0, "async jobs queued or running at once; 0 = 64")
	fs.IntVar(&o.jobRetention, "job-retention", 0, "finished jobs kept for /v1/jobs history; 0 = 256")
	fs.StringVar(&o.stateDir, "state-dir", "", "warm-restart state directory (persisted sketches + job history); empty = in-memory only")
	fs.Int64Var(&o.stateMaxBytes, "state-max-bytes", 0, "total size bound for <state-dir>/sketches; least-recently-used files are deleted over it; 0 = unbounded")
	fs.DurationVar(&o.stateMaxAge, "state-max-age", 0, "drop persisted sketches untouched for this long (e.g. 720h); 0 = unbounded")
	fs.Float64Var(&o.refreshThresh, "refresh-threshold", 0, "dirty RR-set fraction above which a graph update rebuilds sketches instead of refreshing incrementally; 0 = default 0.75")
	fs.DurationVar(&o.coalesceWindow, "coalesce-window", 0, "batch concurrent /v1/select requests arriving within this window onto shared solves (e.g. 5ms); 0 = solve each immediately")
	fs.Func("peers", "comma-separated base URLs of the other replicas; enables peer-aware sharded serving (requires -self)", func(v string) error {
		o.peers = append(o.peers, splitURLs(v)...)
		return nil
	})
	fs.StringVar(&o.self, "self", "", "this replica's advertised base URL, exactly as it appears in the peers' -peers lists")
	fs.Func("route", "router mode: comma-separated replica base URLs to route requests across (serves no graphs itself)", func(v string) error {
		o.route = append(o.route, splitURLs(v)...)
		return nil
	})
	fs.DurationVar(&o.probeInterval, "probe-interval", 0, "peer health-probe period; 0 = 2s")
	fs.StringVar(&o.requestLog, "request-log", "", "structured JSON access log destination: a file path, or - for stderr; empty = off")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(o.route) > 0 && (len(o.peers) > 0 || o.self != "" || len(o.graphs) > 0 || o.stateDir != "") {
		return nil, fmt.Errorf("-route is a pure routing tier and excludes -peers, -self, -graph and -state-dir")
	}
	o.self = strings.TrimRight(o.self, "/")
	return o, nil
}

// buildRegistry wires the configured file graphs plus built-in synthetics.
func buildRegistry(o *options) (*server.Registry, error) {
	reg := server.NewRegistry()
	if !o.noBuiltin {
		if err := reg.Register("twoblock", "synthetic:twoblock", func() (*graph.Graph, error) {
			return generate.TwoBlock(generate.DefaultTwoBlock(1))
		}); err != nil {
			return nil, err
		}
		if err := reg.Register("twostars", "synthetic:twostars", func() (*graph.Graph, error) {
			return generate.TwoStars(), nil
		}); err != nil {
			return nil, err
		}
	}
	for name, path := range o.graphs {
		if err := reg.RegisterFile(name, path); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// openRequestLog resolves the -request-log flag: "" disables the access
// log, "-" writes to stderr, anything else appends to that file.
func openRequestLog(path string, stderr io.Writer) (io.Writer, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return stderr, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening request log: %w", err)
	}
	return f, func() { f.Close() }, nil
}

// run parses flags, builds the server (or, with -route, the standalone
// router) and serves until ctx is cancelled (main wires an
// interrupt/SIGTERM context). A non-nil ready channel receives the bound
// address once listening — used by tests to avoid races.
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- string) error {
	o, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	reqLog, closeLog, err := openRequestLog(o.requestLog, stderr)
	if err != nil {
		return err
	}
	defer closeLog()

	var handler http.Handler
	runProbes := func(context.Context) {}
	flush := func() {}
	var banner string
	if len(o.route) > 0 {
		rt, err := server.NewRouter(server.RouterConfig{
			Replicas:      o.route,
			ProbeInterval: o.probeInterval,
			RequestLog:    reqLog,
		})
		if err != nil {
			return err
		}
		handler = rt.Handler()
		runProbes = rt.RunProbes
		banner = fmt.Sprintf("routing across %s", strings.Join(o.route, ", "))
	} else {
		reg, err := buildRegistry(o)
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{
			Registry:          reg,
			CacheSize:         o.cacheSize,
			MaxConcurrent:     o.maxConc,
			QueueTimeout:      o.queueTimeout,
			SolverParallelism: o.parallelism,
			MaxJobs:           o.maxJobs,
			JobRetention:      o.jobRetention,
			StateDir:          o.stateDir,
			StateMaxBytes:     o.stateMaxBytes,
			StateMaxAge:       o.stateMaxAge,
			RefreshThreshold:  o.refreshThresh,
			CoalesceWindow:    o.coalesceWindow,
			Peers:             o.peers,
			SelfURL:           o.self,
			ProbeInterval:     o.probeInterval,
			RequestLog:        reqLog,
		})
		if err != nil {
			return err
		}
		handler = srv.Handler()
		runProbes = srv.RunClusterProbes
		flush = srv.WaitFlushes
		banner = fmt.Sprintf("graphs: %s", strings.Join(reg.Names(), ", "))
		if len(o.peers) > 0 {
			banner += fmt.Sprintf("; peers: %s", strings.Join(o.peers, ", "))
		}
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: handler}
	errc := make(chan error, 1)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fairtcimd: listening on %s (%s)\n", ln.Addr(), banner)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	probeCtx, stopProbes := context.WithCancel(ctx)
	defer stopProbes()
	go runProbes(probeCtx)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), o.shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// Sketch persistence is write-behind; drain it so a restart on
		// the same state dir finds everything this process built.
		flush()
		return nil
	}
}
