package main

import (
	"bytes"
	"strings"
	"testing"

	"fairtcim/internal/graph"
)

func TestRunTwoBlock(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-kind", "twoblock", "-n", "100", "-seed", "2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.NumGroups() != 2 {
		t.Fatalf("N=%d groups=%d", g.N(), g.NumGroups())
	}
	if !strings.Contains(errw.String(), "100 nodes") {
		t.Fatalf("summary missing: %q", errw.String())
	}
}

func TestRunAllKinds(t *testing.T) {
	for _, kind := range []string{"er", "ba", "fig1"} {
		var out, errw bytes.Buffer
		args := []string{"-kind", kind, "-n", "50"}
		if err := run(args, &out, &errw); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := graph.Read(&out); err != nil {
			t.Fatalf("%s produced unparseable output: %v", kind, err)
		}
	}
}

func TestRunRice(t *testing.T) {
	if testing.Short() {
		t.Skip("rice generation is larger")
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-kind", "rice"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1205 {
		t.Fatalf("rice N = %d", g.N())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-kind", "nope"}, &out, &errw); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run([]string{"-kind", "er", "-p", "1.5"}, &out, &errw); err == nil {
		t.Fatal("bad probability accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}
