// Command gengraph emits synthetic graphs and dataset stand-ins in the
// fairtcim edge-list format, ready for cmd/fairtcim.
//
//	gengraph -kind twoblock -n 500 -g 0.7 -pe 0.05 > sbm.txt
//	gengraph -kind rice > rice.txt
//	gengraph -kind instagram -scale 0.05 > insta.txt
//	gengraph -kind fig1 > fig1.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fairtcim/internal/datasets"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind  = fs.String("kind", "twoblock", "twoblock | er | ba | fig1 | rice | instagram | snap")
		n     = fs.Int("n", 500, "nodes (twoblock/er/ba)")
		frac  = fs.Float64("g", 0.7, "majority fraction (twoblock)")
		phom  = fs.Float64("phom", 0.025, "within-group edge probability (twoblock)")
		phet  = fs.Float64("phet", 0.001, "across-group edge probability (twoblock)")
		p     = fs.Float64("p", 0.1, "edge probability (er)")
		m     = fs.Int("m", 3, "edges per new node (ba)")
		pe    = fs.Float64("pe", 0.05, "activation probability on every edge")
		scale = fs.Float64("scale", 0.1, "instagram scale in (0,1]")
		seed  = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g   *graph.Graph
		err error
	)
	switch *kind {
	case "twoblock":
		g, err = generate.TwoBlock(generate.TwoBlockConfig{
			N: *n, G: *frac, PHom: *phom, PHet: *phet, PActivate: *pe, Seed: *seed,
		})
	case "er":
		g, err = generate.ErdosRenyi(*n, *p, *pe, *seed)
	case "ba":
		g, err = generate.BarabasiAlbert(*n, *m, []float64{*frac, 1 - *frac}, *pe, *seed)
	case "fig1":
		g, _ = generate.Fig1Example()
	case "rice":
		g, err = datasets.RiceFacebook(*pe, *seed)
	case "instagram":
		g, err = datasets.Instagram(*scale, *pe, *seed)
	case "snap":
		g, err = datasets.FacebookSnap(*pe, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if err := graph.Write(stdout, g); err != nil {
		return err
	}
	s := g.ComputeStats()
	fmt.Fprintf(stderr, "gengraph: %d nodes, %d undirected edges, %d groups %v\n",
		s.N, s.M/2, s.NumGroups, s.GroupSizes)
	return nil
}
