package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	listing := out.String()
	for _, id := range []string{"fig1", "fig4a", "fig10c", "abl-celf", "tab-datasets"} {
		if !strings.Contains(listing, id) {
			t.Fatalf("listing missing %q:\n%s", id, listing)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-quick", "-seed", "3", "fig5b"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"55:45", "P1", "P4"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-quick", "-csv", "fig6c"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "Q,") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestRunMultiple(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-quick", "fig6c", "fig5b"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig 6c") || !strings.Contains(out.String(), "Fig 5b") {
		t.Fatal("multiple experiments not concatenated")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{}, &out, &errw); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"nope"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}
