// Command experiments regenerates the paper's tables and figures (and the
// extra ablations) as text tables. Experiment ids match DESIGN.md §5,
// plus "serve-cache" (serving-layer latency) and "accuracy" ((ε,δ)
// stopping-rule sizing) beyond the paper:
//
//	experiments -list
//	experiments fig4a fig4c
//	experiments -quick all
//	experiments -seed 42 -csv fig1
//	experiments -engine ris accuracy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fairtcim/internal/exp"
	"fairtcim/internal/fairim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed   = fs.Int64("seed", 1, "master random seed")
		quick  = fs.Bool("quick", false, "reduced sizes/samples for a fast pass")
		list   = fs.Bool("list", false, "list experiment ids and exit")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned text")
		engine = fs.String("engine", "forward-mc", "estimation engine: forward-mc | ris")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}

	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("usage: experiments [-seed N] [-quick] [-csv] <id>... | all | -list")
	}
	var selected []exp.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		selected = exp.All()
	} else {
		for _, id := range ids {
			e, ok := exp.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	eng, err := fairim.EngineByName(*engine)
	if err != nil {
		return err
	}
	o := exp.Options{Seed: *seed, Quick: *quick, Engine: eng}
	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		table, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			err = table.WriteCSV(stdout)
		} else {
			err = table.WriteText(stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
