// Package fairtcim's root benchmark harness: one testing.B benchmark per
// paper table/figure (DESIGN.md §5) plus the ablations, each regenerating
// the experiment in quick mode, and micro-benchmarks for the hot paths
// (world sampling, marginal-gain BFS, RIS sampling).
//
//	go test -bench=. -benchmem
package fairtcim

import (
	"fmt"
	"io"
	"testing"

	"fairtcim/internal/cascade"
	"fairtcim/internal/exp"
	"fairtcim/internal/generate"
	"fairtcim/internal/graph"
	"fairtcim/internal/influence"
	"fairtcim/internal/ris"
	"fairtcim/internal/xrand"
)

// benchExperiment runs a registered experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	o := exp.Options{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := table.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { benchExperiment(b, "fig4c") }
func BenchmarkFig5a(b *testing.B) { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B) { benchExperiment(b, "fig5c") }
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B) { benchExperiment(b, "fig6c") }

func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c") }
func BenchmarkFig8a(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { benchExperiment(b, "fig8c") }
func BenchmarkFig9a(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)  { benchExperiment(b, "fig9c") }
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFig10c(b *testing.B) { benchExperiment(b, "fig10c") }

func BenchmarkAblationCELF(b *testing.B)       { benchExperiment(b, "abl-celf") }
func BenchmarkAblationRIS(b *testing.B)        { benchExperiment(b, "abl-ris") }
func BenchmarkAblationCurvature(b *testing.B)  { benchExperiment(b, "abl-curvature") }
func BenchmarkAblationLT(b *testing.B)         { benchExperiment(b, "abl-lt") }
func BenchmarkAblationSamples(b *testing.B)    { benchExperiment(b, "abl-samples") }
func BenchmarkAblationICM(b *testing.B)        { benchExperiment(b, "abl-icm") }
func BenchmarkAblationDiscount(b *testing.B)   { benchExperiment(b, "abl-discount") }
func BenchmarkAblationRobust(b *testing.B)     { benchExperiment(b, "abl-robust") }
func BenchmarkAblationSaturation(b *testing.B) { benchExperiment(b, "abl-saturation") }
func BenchmarkTabDatasets(b *testing.B)        { benchExperiment(b, "tab-datasets") }
func BenchmarkTabBaselines(b *testing.B)       { benchExperiment(b, "tab-baselines") }

// --- micro-benchmarks for the hot paths ---

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := generate.TwoBlock(generate.DefaultTwoBlock(1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSampleWorldsIC(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cascade.SampleWorlds(g, cascade.IC, 200, int64(i), 0)
	}
}

// BenchmarkSampleICWorld measures single-world IC sampling on the flat-CSR
// graph; compare against BenchmarkSampleICWorldSliceBaseline, the
// pre-refactor slice-of-slices representation it replaced.
func BenchmarkSampleICWorld(b *testing.B) {
	g := benchGraph(b)
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cascade.SampleICWorld(g, rng)
	}
}

// sliceEdge mirrors the old graph.Edge; sliceAdjacency rebuilds the old
// [][]Edge layout (one heap block per node) so the CSR win stays
// measurable after the representation it replaced is gone.
type sliceEdge struct {
	to graph.NodeID
	p  float64
}

func sliceAdjacency(g *graph.Graph) [][]sliceEdge {
	adj := make([][]sliceEdge, g.N())
	for v := 0; v < g.N(); v++ {
		targets, probs := g.OutEdges(graph.NodeID(v))
		if len(targets) == 0 {
			continue
		}
		edges := make([]sliceEdge, len(targets))
		for i := range targets {
			edges[i] = sliceEdge{to: targets[i], p: probs[i]}
		}
		adj[v] = edges
	}
	return adj
}

func BenchmarkSampleICWorldSliceBaseline(b *testing.B) {
	g := benchGraph(b)
	adj := sliceAdjacency(g)
	m := g.M()
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Replicates the pre-CSR SampleICWorld: per-node slice headers and
		// the old M/4+8 capacity guess.
		n := len(adj)
		offsets := make([]int32, n+1)
		targets := make([]graph.NodeID, 0, m/4+8)
		for v := 0; v < n; v++ {
			offsets[v] = int32(len(targets))
			for _, e := range adj[v] {
				if rng.Bernoulli(e.p) {
					targets = append(targets, e.to)
				}
			}
		}
		offsets[n] = int32(len(targets))
	}
}

// BenchmarkGroupMembers measures the precomputed group index against the
// O(N) label scan it replaced.
func BenchmarkGroupMembers(b *testing.B) {
	g := benchGraph(b)
	b.Run("csr-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.GroupMembers(i % g.NumGroups())
		}
	})
	b.Run("scan-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			grp := i % g.NumGroups()
			members := make([]graph.NodeID, 0, g.GroupSize(grp))
			for v := 0; v < g.N(); v++ {
				if g.Group(graph.NodeID(v)) == grp {
					members = append(members, graph.NodeID(v))
				}
			}
		}
	})
}

func BenchmarkEvaluatorGain(b *testing.B) {
	g := benchGraph(b)
	worlds := cascade.SampleWorlds(g, cascade.IC, 200, 1, 0)
	e, err := influence.NewEvaluator(g, worlds, 20)
	if err != nil {
		b.Fatal(err)
	}
	e.Add(0)
	e.Add(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Gain(graph.NodeID(i % g.N()))
	}
}

func BenchmarkEvaluatorInitialGains(b *testing.B) {
	g := benchGraph(b)
	worlds := cascade.SampleWorlds(g, cascade.IC, 100, 1, 0)
	e, err := influence.NewEvaluator(g, worlds, 20)
	if err != nil {
		b.Fatal(err)
	}
	cands := g.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.InitialGains(cands, 0)
	}
}

func BenchmarkRISSample(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ris.Sample(g, 5, []int{2000, 2000}, int64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunIC(b *testing.B) {
	g := benchGraph(b)
	for _, tau := range []int32{2, 20, cascade.NoDeadline} {
		name := fmt.Sprintf("tau=%d", tau)
		if tau == cascade.NoDeadline {
			name = "tau=inf"
		}
		b.Run(name, func(b *testing.B) {
			rng := xrand.New(1)
			seeds := []graph.NodeID{0, 100, 200}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = cascade.RunIC(g, seeds, tau, rng)
			}
		})
	}
}
